// Synthetic dataset generators matching the paper's Table II workloads.
//
// The real covtype/w8a/delicious/real-sim files are not distributable with
// this repository, so each generator produces a deterministic dataset with
// the same shape characteristics the evaluation depends on:
//   - N (examples), d (features), K (classes)  — Table II;
//   - a planted class structure (noisy class centroids over a sparse
//     support) so SGD actually has signal to descend, with enough label
//     noise that convergence takes multiple epochs;
//   - sparsity/feature-scale patterns reminiscent of the originals
//     (bag-of-words-style high-dimensional sparse rows for real-sim and
//     delicious, dense low-dimensional rows for covtype).
// The `scale` parameter shrinks N (and d for the high-dimensional sets)
// proportionally so the full benchmark suite runs on laptop-class hosts;
// scale = 1 reproduces the paper-size shapes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hetsgd::data {

// Free-form generator: K noisy centroids over a support of `support`
// nonzero dimensions each, labels flipped with probability `label_noise`.
struct SyntheticSpec {
  std::string name = "synthetic";
  tensor::Index examples = 1000;
  tensor::Index dim = 32;
  std::int32_t classes = 2;
  tensor::Index support = 0;     // nonzero centroid dims; 0 = all of them
  double feature_noise = 0.5;    // stddev of per-example Gaussian noise
  double label_noise = 0.05;     // probability a label is resampled
  double density = 1.0;          // fraction of nonzero features per example
  // Fraction of examples that are *distinct*: the generator first builds a
  // pool of distinct_fraction * examples base rows and then samples
  // examples from it (with fresh label noise per occurrence). Real tabular
  // datasets are highly redundant — covtype's 581k rows over 54 features
  // contain massive near-duplication — and that redundancy is what makes
  // many-updates-on-a-fraction-of-an-epoch (Hogwild) competitive with
  // full-epoch coverage. 1.0 = all rows distinct (i.i.d. draws).
  double distinct_fraction = 1.0;
  // Lognormal sigma of per-feature scale factors (0 = uniform scales).
  // Text-like data has power-law term frequencies; the resulting
  // ill-conditioned input covariance is what makes few-large-batch
  // optimizers crawl while many-small-update Hogwild keeps descending.
  double feature_scale_sigma = 0.0;
  // Centroids per class. 1 gives a unimodal (low-rank) class structure
  // that a handful of large-batch updates can fit; larger values plant a
  // multi-modal, high-rank decision boundary that needs many distinct
  // descent directions — the regime where Hogwild's update count beats
  // mini-batch's gradient accuracy (real-sim, Fig. 5d).
  tensor::Index clusters_per_class = 1;
  std::uint64_t seed = 42;
};

Dataset make_synthetic(const SyntheticSpec& spec);

// The paper's four evaluation datasets (Table II).
enum class PaperDataset { kCovtype, kW8a, kDelicious, kRealSim };

const char* paper_dataset_name(PaperDataset d);
bool parse_paper_dataset(const std::string& name, PaperDataset& out);

// Table II metadata plus the per-dataset DNN depth used in §VII-A
// ("the number of hidden layers is set inversely proportional to the
// dataset size, to 4 (real-sim), 6 (covtype), and 8 (w8a and delicious)").
struct PaperDatasetInfo {
  PaperDataset id;
  const char* name;
  tensor::Index examples;
  tensor::Index dim;
  std::int32_t classes;
  int hidden_layers;
};

PaperDatasetInfo paper_dataset_info(PaperDataset d);
std::vector<PaperDatasetInfo> all_paper_datasets();

// Builds the synthetic stand-in. `scale` in (0, 1] shrinks N (and d for
// the sparse high-dimensional datasets). seed fixes the generator.
Dataset make_paper_dataset(PaperDataset d, double scale, std::uint64_t seed);

}  // namespace hetsgd::data
