#include "data/split.hpp"

#include <algorithm>
#include <vector>

#include "common/macros.hpp"

namespace hetsgd::data {

using tensor::Index;

namespace {

Dataset gather(const Dataset& source, const std::vector<Index>& rows,
               const std::string& suffix) {
  tensor::Matrix features(static_cast<Index>(rows.size()), source.dim());
  std::vector<std::int32_t> labels(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const tensor::Scalar* from = source.features().row(rows[i]);
    std::copy(from, from + source.dim(),
              features.row(static_cast<Index>(i)));
    labels[i] = source.labels()[static_cast<std::size_t>(rows[i])];
  }
  return Dataset(source.name() + suffix, std::move(features),
                 std::move(labels), source.num_classes());
}

}  // namespace

SplitResult train_test_split(const Dataset& dataset, double test_fraction,
                             Rng& rng, bool stratified) {
  HETSGD_ASSERT(test_fraction > 0.0 && test_fraction < 1.0,
                "test_fraction must be in (0, 1)");
  const Index n = dataset.example_count();
  HETSGD_ASSERT(n >= 2, "need at least two examples to split");

  std::vector<Index> test_rows;
  std::vector<Index> train_rows;

  if (stratified) {
    // Group rows by class, split each group.
    std::vector<std::vector<Index>> by_class(
        static_cast<std::size_t>(dataset.num_classes()));
    for (Index i = 0; i < n; ++i) {
      by_class[static_cast<std::size_t>(
                   dataset.labels()[static_cast<std::size_t>(i)])]
          .push_back(i);
    }
    for (auto& group : by_class) {
      if (group.empty()) continue;
      std::vector<std::size_t> order(group.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.shuffle(order);
      const std::size_t test_count = std::min(
          group.size() - (group.size() > 1 ? 1 : 0),
          static_cast<std::size_t>(
              static_cast<double>(group.size()) * test_fraction + 0.5));
      for (std::size_t i = 0; i < group.size(); ++i) {
        (i < test_count ? test_rows : train_rows)
            .push_back(group[order[i]]);
      }
    }
  } else {
    std::vector<std::size_t> order(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    const std::size_t test_count = std::clamp<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(n) * test_fraction +
                                 0.5),
        1, static_cast<std::size_t>(n) - 1);
    for (std::size_t i = 0; i < order.size(); ++i) {
      (i < test_count ? test_rows : train_rows)
          .push_back(static_cast<Index>(order[i]));
    }
  }

  // Degenerate stratified splits can leave a side empty; rebalance.
  HETSGD_ASSERT(!train_rows.empty() && !test_rows.empty(),
                "split produced an empty side");
  return SplitResult{gather(dataset, train_rows, "-train"),
                     gather(dataset, test_rows, "-test")};
}

}  // namespace hetsgd::data
