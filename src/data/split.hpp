// Train/test splitting with optional stratification.
//
// The paper evaluates training loss only; a library users adopt also needs
// held-out evaluation. Stratified splitting preserves class frequencies —
// important for delicious-style datasets with hundreds of rare classes.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace hetsgd::data {

struct SplitResult {
  Dataset train;
  Dataset test;
};

// Randomly partitions `dataset` into train/test with `test_fraction` of
// examples in the test set (at least 1 example in each side). When
// `stratified` is set, the split is performed per class, so each class's
// test share matches test_fraction as closely as integer counts allow.
SplitResult train_test_split(const Dataset& dataset, double test_fraction,
                             Rng& rng, bool stratified = true);

}  // namespace hetsgd::data
