// In-memory training dataset.
//
// The coordinator loads the full dataset into shared memory once (§V-B
// initialization stage) and hands workers *references* — contiguous row
// ranges — never copies. Examples are stored dense (the paper processes
// all datasets in dense format).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, tensor::Matrix features,
          std::vector<std::int32_t> labels, std::int32_t num_classes);

  const std::string& name() const { return name_; }
  tensor::Index example_count() const { return features_.rows(); }
  tensor::Index dim() const { return features_.cols(); }
  std::int32_t num_classes() const { return num_classes_; }

  const tensor::Matrix& features() const { return features_; }
  std::span<const std::int32_t> labels() const { return labels_; }

  // Batch reference: rows [begin, begin+count) plus their labels. This is
  // the "reference to a range in the training data" of §V-A.
  tensor::ConstMatrixView batch_features(tensor::Index begin,
                                         tensor::Index count) const;
  std::span<const std::int32_t> batch_labels(tensor::Index begin,
                                             tensor::Index count) const;

  // Physically permutes examples (rows and labels together). Called by the
  // coordinator at epoch boundaries, when no batch references are live.
  void shuffle(Rng& rng);

  // Per-feature min-max scaling to [0, 1]; constant features map to 0.
  void scale_features_minmax();

  // Class histogram (size num_classes).
  std::vector<std::uint64_t> class_histogram() const;

  // Memory footprint of the feature matrix in bytes.
  std::uint64_t feature_bytes() const {
    return static_cast<std::uint64_t>(features_.size()) *
           sizeof(tensor::Scalar);
  }

 private:
  std::string name_;
  tensor::Matrix features_;
  std::vector<std::int32_t> labels_;
  std::int32_t num_classes_ = 0;
};

}  // namespace hetsgd::data
