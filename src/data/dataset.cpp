#include "data/dataset.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.hpp"

namespace hetsgd::data {

using tensor::Index;
using tensor::Scalar;

Dataset::Dataset(std::string name, tensor::Matrix features,
                 std::vector<std::int32_t> labels, std::int32_t num_classes)
    : name_(std::move(name)), features_(std::move(features)),
      labels_(std::move(labels)), num_classes_(num_classes) {
  HETSGD_ASSERT(static_cast<Index>(labels_.size()) == features_.rows(),
                "label count != example count");
  HETSGD_ASSERT(num_classes_ >= 2, "need at least two classes");
  for (auto y : labels_) {
    HETSGD_ASSERT(y >= 0 && y < num_classes_, "label out of range");
  }
}

tensor::ConstMatrixView Dataset::batch_features(Index begin,
                                                Index count) const {
  return features_.rows_view(begin, count);
}

std::span<const std::int32_t> Dataset::batch_labels(Index begin,
                                                    Index count) const {
  HETSGD_ASSERT(begin >= 0 && count >= 0 &&
                    begin + count <= static_cast<Index>(labels_.size()),
                "batch labels out of range");
  return std::span<const std::int32_t>(labels_.data() + begin,
                                       static_cast<std::size_t>(count));
}

namespace detail {

// hetsgd-racy: the two helpers below are the ONLY sanctioned race surface
// of the epoch reshuffle. A zombie reader — a worker whose overdue batch
// was reclaimed but whose thread is still grinding the old range — may
// read feature rows / labels while these swaps rewrite them. The zombie's
// report is discarded from the accounting (late-report path), its reads
// just observe a mix of pre/post-shuffle examples, and a pathological
// update is caught by the divergence guard. They are separate noinline
// functions precisely so scripts/tsan.supp can suppress exactly this
// swap↔reader pair by symbol name instead of every race anywhere under
// Dataset::shuffle — races on the shuffle's own bookkeeping (RNG state,
// sizes, the scratch buffer) still get reported.

HETSGD_NOINLINE void hogwild_swap_rows(Scalar* a, Scalar* b, Scalar* scratch,
                                       Index d) {
  std::copy(a, a + d, scratch);
  std::copy(b, b + d, a);
  std::copy(scratch, scratch + d, b);
}

HETSGD_NOINLINE void hogwild_swap_labels(std::int32_t& a, std::int32_t& b) {
  std::swap(a, b);
}

}  // namespace detail

void Dataset::shuffle(Rng& rng) {
  const Index n = example_count();
  const Index d = dim();
  std::vector<Scalar> row_buf(static_cast<std::size_t>(d));
  // Fisher-Yates on rows, swapping labels in lockstep.
  for (Index i = n; i > 1; --i) {
    const Index j = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(i)));
    if (j == i - 1) continue;
    detail::hogwild_swap_rows(features_.row(i - 1), features_.row(j),
                              row_buf.data(), d);
    detail::hogwild_swap_labels(labels_[static_cast<std::size_t>(i - 1)],
                                labels_[static_cast<std::size_t>(j)]);
  }
}

void Dataset::scale_features_minmax() {
  const Index n = example_count();
  const Index d = dim();
  if (n == 0) return;
  std::vector<Scalar> lo(static_cast<std::size_t>(d),
                         std::numeric_limits<Scalar>::max());
  std::vector<Scalar> hi(static_cast<std::size_t>(d),
                         std::numeric_limits<Scalar>::lowest());
  for (Index r = 0; r < n; ++r) {
    const Scalar* row = features_.row(r);
    for (Index c = 0; c < d; ++c) {
      lo[c] = std::min(lo[c], row[c]);
      hi[c] = std::max(hi[c], row[c]);
    }
  }
  for (Index r = 0; r < n; ++r) {
    Scalar* row = features_.row(r);
    for (Index c = 0; c < d; ++c) {
      const Scalar span = hi[c] - lo[c];
      row[c] = span > 0 ? (row[c] - lo[c]) / span : Scalar{0};
    }
  }
}

std::vector<std::uint64_t> Dataset::class_histogram() const {
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(num_classes_), 0);
  for (auto y : labels_) {
    ++hist[static_cast<std::size_t>(y)];
  }
  return hist;
}

}  // namespace hetsgd::data
