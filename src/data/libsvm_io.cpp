#include "data/libsvm_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/macros.hpp"

namespace hetsgd::data {

using tensor::Index;
using tensor::Scalar;

namespace {

struct SparseExample {
  double label = 0;
  std::vector<std::pair<Index, Scalar>> entries;
};

enum class ParseStatus { kOk, kSkip, kError };

std::string at_line(std::size_t line_no, const std::string& what) {
  return "line " + std::to_string(line_no) + ": " + what;
}

// Parses one "label idx:val idx:val ..." line. kSkip for blank or comment
// lines; kError (with a "line N: ..." message in *error) for malformed
// input. Never aborts — a bad dataset file is an input problem, not a bug.
ParseStatus parse_line(const std::string& line, std::size_t line_no,
                       SparseExample& out, std::string* error) {
  std::size_t pos = line.find_first_not_of(" \t\r");
  if (pos == std::string::npos || line[pos] == '#') return ParseStatus::kSkip;
  const char* s = line.c_str() + pos;
  char* end = nullptr;
  out.label = std::strtod(s, &end);
  if (end == s) {
    *error = at_line(line_no, "missing or non-numeric label");
    return ParseStatus::kError;
  }
  if (!std::isfinite(out.label)) {
    *error = at_line(line_no, "non-finite label");
    return ParseStatus::kError;
  }
  out.entries.clear();
  s = end;
  for (;;) {
    while (*s == ' ' || *s == '\t' || *s == '\r') ++s;
    if (*s == '\0' || *s == '\n' || *s == '#') break;
    long idx = std::strtol(s, &end, 10);
    if (end == s || *end != ':') {
      *error = at_line(line_no, "malformed pair (expected index:value)");
      return ParseStatus::kError;
    }
    if (idx < 1) {
      *error = at_line(line_no, "feature index " + std::to_string(idx) +
                                    " (indices are 1-based)");
      return ParseStatus::kError;
    }
    s = end + 1;
    double val = std::strtod(s, &end);
    if (end == s) {
      *error = at_line(line_no,
                       "missing value after index " + std::to_string(idx));
      return ParseStatus::kError;
    }
    if (!std::isfinite(val)) {
      *error = at_line(line_no, "non-finite value at index " +
                                    std::to_string(idx));
      return ParseStatus::kError;
    }
    s = end;
    out.entries.emplace_back(static_cast<Index>(idx - 1),
                             static_cast<Scalar>(val));
  }
  return ParseStatus::kOk;
}

std::optional<Dataset> build_dataset(std::istream& in,
                                     const LibsvmReadOptions& options,
                                     const std::string& default_name,
                                     std::string* error) {
  std::vector<SparseExample> examples;
  std::string line;
  std::size_t line_no = 0;
  std::size_t max_index_line = 0;
  Index max_index = -1;
  while (std::getline(in, line)) {
    ++line_no;
    SparseExample ex;
    const ParseStatus status = parse_line(line, line_no, ex, error);
    if (status == ParseStatus::kError) return std::nullopt;
    if (status == ParseStatus::kSkip) continue;
    for (const auto& [idx, val] : ex.entries) {
      if (idx > max_index) {
        max_index = idx;
        max_index_line = line_no;
      }
    }
    examples.push_back(std::move(ex));
    if (options.max_examples > 0 &&
        static_cast<Index>(examples.size()) >= options.max_examples) {
      break;
    }
  }
  if (examples.empty()) {
    *error = "no examples found";
    return std::nullopt;
  }

  Index dim = options.dim > 0 ? options.dim : max_index + 1;
  if (dim <= 0) {
    *error = "could not infer dimension (no features seen)";
    return std::nullopt;
  }
  if (max_index >= dim) {
    *error = at_line(max_index_line,
                     "feature index " + std::to_string(max_index + 1) +
                         " exceeds dimension " + std::to_string(dim));
    return std::nullopt;
  }

  // Remap raw labels to contiguous ids. Sorted (std::map) so the mapping is
  // deterministic regardless of example order: -1 -> 0, +1 -> 1, etc.
  std::map<long, std::int32_t> label_ids;
  for (const auto& ex : examples) {
    label_ids.emplace(static_cast<long>(ex.label), 0);
  }
  std::int32_t next_id = 0;
  for (auto& [raw, id] : label_ids) {
    id = next_id++;
  }

  const Index n = static_cast<Index>(examples.size());
  tensor::Matrix features(n, dim);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    const auto& ex = examples[static_cast<std::size_t>(r)];
    Scalar* row = features.row(r);
    for (const auto& [idx, val] : ex.entries) {
      row[idx] = val;
    }
    labels[static_cast<std::size_t>(r)] =
        label_ids.at(static_cast<long>(ex.label));
  }
  std::string name =
      options.dataset_name.empty() ? default_name : options.dataset_name;
  return Dataset(std::move(name), std::move(features), std::move(labels),
                 next_id < 2 ? 2 : next_id);
}

}  // namespace

std::optional<Dataset> try_read_libsvm(const std::string& path,
                                       const LibsvmReadOptions& options,
                                       std::string* error) {
  std::string local;
  std::string* err = error != nullptr ? error : &local;
  std::ifstream in(path);
  if (!in.good()) {
    *err = "cannot open input file: " + path;
    return std::nullopt;
  }
  auto dataset = build_dataset(in, options, path, err);
  if (!dataset.has_value()) *err = path + ": " + *err;
  return dataset;
}

std::optional<Dataset> try_read_libsvm_string(const std::string& content,
                                              const LibsvmReadOptions& options,
                                              std::string* error) {
  std::string local;
  std::istringstream in(content);
  return build_dataset(in, options, "inline",
                       error != nullptr ? error : &local);
}

Dataset read_libsvm(const std::string& path, const LibsvmReadOptions& options) {
  std::string error;
  auto dataset = try_read_libsvm(path, options, &error);
  HETSGD_ASSERT(dataset.has_value(), ("libsvm: " + error).c_str());
  return std::move(*dataset);
}

Dataset read_libsvm_string(const std::string& content,
                           const LibsvmReadOptions& options) {
  std::string error;
  auto dataset = try_read_libsvm_string(content, options, &error);
  HETSGD_ASSERT(dataset.has_value(), ("libsvm: " + error).c_str());
  return std::move(*dataset);
}

void write_libsvm(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  HETSGD_ASSERT(out.good(), "libsvm: cannot open output file");
  const Index n = dataset.example_count();
  const Index d = dataset.dim();
  for (Index r = 0; r < n; ++r) {
    out << dataset.labels()[static_cast<std::size_t>(r)];
    const Scalar* row = dataset.features().row(r);
    for (Index c = 0; c < d; ++c) {
      if (row[c] != Scalar{0}) {
        out << ' ' << (c + 1) << ':' << row[c];
      }
    }
    out << '\n';
  }
  HETSGD_ASSERT(out.good(), "libsvm: write failed");
}

}  // namespace hetsgd::data
