#include "data/libsvm_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/macros.hpp"

namespace hetsgd::data {

using tensor::Index;
using tensor::Scalar;

namespace {

struct SparseExample {
  double label = 0;
  std::vector<std::pair<Index, Scalar>> entries;
};

// Parses one "label idx:val idx:val ..." line. Returns false for blank or
// comment lines.
bool parse_line(const std::string& line, std::size_t line_no,
                SparseExample& out) {
  std::size_t pos = line.find_first_not_of(" \t\r");
  if (pos == std::string::npos || line[pos] == '#') return false;
  const char* s = line.c_str() + pos;
  char* end = nullptr;
  out.label = std::strtod(s, &end);
  HETSGD_ASSERT(end != s, "libsvm: missing label");
  out.entries.clear();
  s = end;
  for (;;) {
    while (*s == ' ' || *s == '\t' || *s == '\r') ++s;
    if (*s == '\0' || *s == '\n' || *s == '#') break;
    long idx = std::strtol(s, &end, 10);
    if (end == s || *end != ':') {
      std::fprintf(stderr, "libsvm: malformed pair at line %zu\n", line_no);
      std::abort();
    }
    HETSGD_ASSERT(idx >= 1, "libsvm: feature indices are 1-based");
    s = end + 1;
    double val = std::strtod(s, &end);
    if (end == s) {
      std::fprintf(stderr, "libsvm: missing value at line %zu\n", line_no);
      std::abort();
    }
    s = end;
    out.entries.emplace_back(static_cast<Index>(idx - 1),
                             static_cast<Scalar>(val));
  }
  return true;
}

Dataset build_dataset(std::istream& in, const LibsvmReadOptions& options,
                      const std::string& default_name) {
  std::vector<SparseExample> examples;
  std::string line;
  std::size_t line_no = 0;
  Index max_index = -1;
  while (std::getline(in, line)) {
    ++line_no;
    SparseExample ex;
    if (!parse_line(line, line_no, ex)) continue;
    for (const auto& [idx, val] : ex.entries) {
      max_index = std::max(max_index, idx);
    }
    examples.push_back(std::move(ex));
    if (options.max_examples > 0 &&
        static_cast<Index>(examples.size()) >= options.max_examples) {
      break;
    }
  }
  HETSGD_ASSERT(!examples.empty(), "libsvm: no examples found");

  Index dim = options.dim > 0 ? options.dim : max_index + 1;
  HETSGD_ASSERT(dim > 0, "libsvm: could not infer dimension");
  HETSGD_ASSERT(max_index < dim, "libsvm: feature index exceeds --dim");

  // Remap raw labels to contiguous ids. Sorted (std::map) so the mapping is
  // deterministic regardless of example order: -1 -> 0, +1 -> 1, etc.
  std::map<long, std::int32_t> label_ids;
  for (const auto& ex : examples) {
    label_ids.emplace(static_cast<long>(ex.label), 0);
  }
  std::int32_t next_id = 0;
  for (auto& [raw, id] : label_ids) {
    id = next_id++;
  }

  const Index n = static_cast<Index>(examples.size());
  tensor::Matrix features(n, dim);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    const auto& ex = examples[static_cast<std::size_t>(r)];
    Scalar* row = features.row(r);
    for (const auto& [idx, val] : ex.entries) {
      row[idx] = val;
    }
    labels[static_cast<std::size_t>(r)] =
        label_ids.at(static_cast<long>(ex.label));
  }
  std::string name =
      options.dataset_name.empty() ? default_name : options.dataset_name;
  return Dataset(std::move(name), std::move(features), std::move(labels),
                 next_id < 2 ? 2 : next_id);
}

}  // namespace

Dataset read_libsvm(const std::string& path, const LibsvmReadOptions& options) {
  std::ifstream in(path);
  HETSGD_ASSERT(in.good(), "libsvm: cannot open input file");
  return build_dataset(in, options, path);
}

Dataset read_libsvm_string(const std::string& content,
                           const LibsvmReadOptions& options) {
  std::istringstream in(content);
  return build_dataset(in, options, "inline");
}

void write_libsvm(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  HETSGD_ASSERT(out.good(), "libsvm: cannot open output file");
  const Index n = dataset.example_count();
  const Index d = dataset.dim();
  for (Index r = 0; r < n; ++r) {
    out << dataset.labels()[static_cast<std::size_t>(r)];
    const Scalar* row = dataset.features().row(r);
    for (Index c = 0; c < d; ++c) {
      if (row[c] != Scalar{0}) {
        out << ' ' << (c + 1) << ':' << row[c];
      }
    }
    out << '\n';
  }
  HETSGD_ASSERT(out.good(), "libsvm: write failed");
}

}  // namespace hetsgd::data
