#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::data {

using tensor::Index;
using tensor::Scalar;

Dataset make_synthetic(const SyntheticSpec& spec) {
  HETSGD_ASSERT(spec.examples > 0 && spec.dim > 0, "empty synthetic spec");
  HETSGD_ASSERT(spec.classes >= 2, "need at least two classes");
  HETSGD_ASSERT(spec.density > 0.0 && spec.density <= 1.0, "bad density");
  Rng rng(spec.seed);

  const Index support =
      spec.support > 0 ? std::min(spec.support, spec.dim) : spec.dim;
  const Index clusters = std::max<Index>(1, spec.clusters_per_class);

  // Per-(class, cluster) centroids: `support` randomly-chosen dimensions
  // carry signal; the rest stay zero.
  tensor::Matrix centroids(spec.classes * clusters, spec.dim);
  for (Index kc = 0; kc < spec.classes * clusters; ++kc) {
    Rng crng = rng.fork(static_cast<std::uint64_t>(kc) + 1);
    std::vector<std::size_t> dims(static_cast<std::size_t>(spec.dim));
    std::iota(dims.begin(), dims.end(), 0);
    crng.shuffle(dims);
    Scalar* row = centroids.row(kc);
    for (Index s = 0; s < support; ++s) {
      row[dims[static_cast<std::size_t>(s)]] =
          static_cast<Scalar>(crng.normal(0.0, 1.0));
    }
  }

  // Heavy-tailed per-feature scales (text term-frequency structure).
  std::vector<Scalar> feature_scale(static_cast<std::size_t>(spec.dim),
                                    Scalar{1});
  if (spec.feature_scale_sigma > 0.0) {
    Rng srng = rng.fork(0x5ca1e);
    for (auto& s : feature_scale) {
      s = static_cast<Scalar>(
          std::exp(srng.normal(0.0, spec.feature_scale_sigma)));
    }
  }

  HETSGD_ASSERT(spec.distinct_fraction > 0.0 && spec.distinct_fraction <= 1.0,
                "distinct_fraction out of (0, 1]");
  const bool redundant = spec.distinct_fraction < 1.0;
  const Index pool_size =
      redundant ? std::max<Index>(
                      spec.classes,
                      static_cast<Index>(static_cast<double>(spec.examples) *
                                         spec.distinct_fraction))
                : spec.examples;

  // Base rows: distinct draws from the class/cluster mixture.
  tensor::Matrix pool(pool_size, spec.dim);
  std::vector<std::int32_t> pool_class(static_cast<std::size_t>(pool_size));
  for (Index i = 0; i < pool_size; ++i) {
    const std::int32_t k = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(spec.classes)));
    const Index cluster = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(clusters)));
    pool_class[static_cast<std::size_t>(i)] = k;
    Scalar* row = pool.row(i);
    const Scalar* centroid = centroids.row(k * clusters + cluster);
    for (Index c = 0; c < spec.dim; ++c) {
      if (spec.density < 1.0 && !rng.bernoulli(spec.density)) {
        continue;  // stays zero: sparse bag-of-words-style row
      }
      row[c] = (centroid[c] +
                static_cast<Scalar>(rng.normal(0.0, spec.feature_noise))) *
               feature_scale[static_cast<std::size_t>(c)];
    }
  }

  // Examples: the pool itself (distinct case) or draws from it with fresh
  // label noise per occurrence (duplicate rows carrying conflicting labels
  // set an honest loss floor that cannot be memorized away).
  tensor::Matrix features(spec.examples, spec.dim);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(spec.examples));
  for (Index i = 0; i < spec.examples; ++i) {
    const Index src =
        redundant ? static_cast<Index>(rng.next_below(
                        static_cast<std::uint64_t>(pool_size)))
                  : i;
    const Scalar* from = pool.row(src);
    std::copy(from, from + spec.dim, features.row(i));
    std::int32_t observed = pool_class[static_cast<std::size_t>(src)];
    if (spec.label_noise > 0.0 && rng.bernoulli(spec.label_noise)) {
      observed = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(spec.classes)));
    }
    labels[static_cast<std::size_t>(i)] = observed;
  }

  return Dataset(spec.name, std::move(features), std::move(labels),
                 spec.classes);
}

const char* paper_dataset_name(PaperDataset d) {
  switch (d) {
    case PaperDataset::kCovtype:   return "covtype";
    case PaperDataset::kW8a:       return "w8a";
    case PaperDataset::kDelicious: return "delicious";
    case PaperDataset::kRealSim:   return "real-sim";
  }
  return "?";
}

bool parse_paper_dataset(const std::string& name, PaperDataset& out) {
  if (name == "covtype")   { out = PaperDataset::kCovtype;   return true; }
  if (name == "w8a")       { out = PaperDataset::kW8a;       return true; }
  if (name == "delicious") { out = PaperDataset::kDelicious; return true; }
  if (name == "real-sim" || name == "realsim") {
    out = PaperDataset::kRealSim;
    return true;
  }
  return false;
}

PaperDatasetInfo paper_dataset_info(PaperDataset d) {
  // N/d/K follow the LIBSVM releases the paper evaluates on (Table II);
  // covtype/w8a/real-sim are binary, delicious is 983-way.
  switch (d) {
    case PaperDataset::kCovtype:
      return {d, "covtype", 581012, 54, 2, 6};
    case PaperDataset::kW8a:
      return {d, "w8a", 49749, 300, 2, 8};
    case PaperDataset::kDelicious:
      return {d, "delicious", 16105, 500, 983, 8};
    case PaperDataset::kRealSim:
      return {d, "real-sim", 72309, 20958, 2, 4};
  }
  HETSGD_UNREACHABLE("unknown paper dataset");
}

std::vector<PaperDatasetInfo> all_paper_datasets() {
  return {paper_dataset_info(PaperDataset::kCovtype),
          paper_dataset_info(PaperDataset::kW8a),
          paper_dataset_info(PaperDataset::kDelicious),
          paper_dataset_info(PaperDataset::kRealSim)};
}

Dataset make_paper_dataset(PaperDataset d, double scale, std::uint64_t seed) {
  HETSGD_ASSERT(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const PaperDatasetInfo info = paper_dataset_info(d);

  SyntheticSpec spec;
  spec.name = info.name;
  spec.seed = seed;
  spec.examples = std::max<Index>(
      128, static_cast<Index>(static_cast<double>(info.examples) * scale));
  spec.classes = info.classes;

  switch (d) {
    case PaperDataset::kCovtype:
      // Dense cartographic features, low dimension.
      // Noise levels are tuned so training descends gradually over tens of
      // epochs (the paper's covtype curve: fast to ~90% of the minimum,
      // slow afterwards) instead of converging within the first epoch.
      spec.dim = info.dim;
      spec.support = info.dim;
      spec.density = 1.0;
      spec.feature_noise = 2.5;
      spec.label_noise = 0.18;
      spec.clusters_per_class = 2;
      break;
    case PaperDataset::kW8a:
      // Binary sparse features (web page attributes), ~4% density.
      spec.dim = info.dim;
      spec.support = 64;
      spec.density = 0.15;
      spec.feature_noise = 2.0;
      spec.label_noise = 0.15;
      spec.clusters_per_class = 4;
      break;
    case PaperDataset::kDelicious:
      // Bag-of-words, 983 tag classes; keep all classes but shrink class
      // count when examples would undercover them.
      spec.dim = info.dim;
      spec.support = 48;
      spec.density = 0.12;
      spec.feature_noise = 1.2;
      spec.label_noise = 0.10;
      // With very small scales, 983 classes cannot all be populated; keep
      // at least ~8 examples per class.
      if (spec.examples / 8 < spec.classes) {
        spec.classes = std::max<std::int32_t>(
            16, static_cast<std::int32_t>(spec.examples / 8));
      }
      break;
    case PaperDataset::kRealSim:
      // Very high-dimensional sparse text; d shrinks with scale so the
      // dimensionality *ratio* to the other datasets is preserved.
      spec.dim = std::max<Index>(
          512, static_cast<Index>(static_cast<double>(info.dim) *
                                  std::sqrt(scale)));
      spec.support = 96;
      spec.density = 0.01;
      spec.feature_noise = 1.5;
      spec.label_noise = 0.18;
      break;
  }
  return make_synthetic(spec);
}

}  // namespace hetsgd::data
