#include "obs/trace.hpp"

#if !defined(HETSGD_TRACE_DISABLED)

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_annotations.hpp"
#include "concurrent/spsc_ring.hpp"
#include "obs/clock.hpp"

namespace hetsgd::obs {
namespace {

struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : ring(capacity) {}
  concurrent::SpscRing<TraceEvent> ring;  // producer: owning thread;
                                          // consumer: flusher (then the
                                          // stopping thread after join)
  std::atomic<std::uint64_t> dropped{0};
  int tid = 0;          // dense track id, assigned at registration
  std::string name;     // guarded by State::mu
};

struct State {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch{0};  // bumped by start(); TLS slots
                                        // from older epochs re-register
  std::atomic<std::uint64_t> collected{0};

  AnnotatedMutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers HETSGD_GUARDED_BY(mu);
  // Buffers from earlier sessions. They are retired here instead of freed
  // because a producer that loaded enabled==true before stop() may still
  // be inside record() with a pointer to its old ring; pushing into a
  // retired (but live) ring is a harmless lost event, pushing into a
  // freed one is a use-after-free. Bounded by restarts x threads, and
  // restarts are rare (tests, multiple Trainer::run in one process).
  std::vector<std::unique_ptr<ThreadBuffer>> graveyard HETSGD_GUARDED_BY(mu);
  std::size_t capacity HETSGD_GUARDED_BY(mu) = std::size_t{1} << 15;
  std::uint64_t base_ns HETSGD_GUARDED_BY(mu) = 0;

  // Flusher lifecycle (guarded by mu / cv).
  std::thread flusher;
  std::mutex cv_mu;
  std::condition_variable cv;
  bool flusher_stop = false;  // guarded by cv_mu

  // Drained events. Written only by the flusher while it runs and by
  // the stopping thread after join(); the join is the sync point.
  std::vector<TraceEvent> sink;
};

State& state() {
  // hetsgd-lint: allow(naked-new) leaked singleton: outlives all threads
  static State* s = new State();
  return *s;
}

struct TlsSlot {
  ThreadBuffer* buf = nullptr;
  std::uint64_t epoch = ~std::uint64_t{0};
  std::string pending_name;  // name set before the tracer started
};

thread_local TlsSlot tls_slot;

ThreadBuffer* register_thread() {
  State& s = state();
  MutexLock lock(s.mu);
  s.buffers.push_back(std::make_unique<ThreadBuffer>(s.capacity));
  ThreadBuffer* buf = s.buffers.back().get();
  buf->tid = static_cast<int>(s.buffers.size());
  buf->name = tls_slot.pending_name;
  return buf;
}

ThreadBuffer* this_thread_buffer() {
  State& s = state();
  const std::uint64_t epoch = s.epoch.load(std::memory_order_acquire);
  if (tls_slot.epoch != epoch) {
    tls_slot.buf = register_thread();
    tls_slot.epoch = epoch;
  }
  return tls_slot.buf;
}

void drain_all_locked_snapshot(std::vector<ThreadBuffer*> const& bufs) {
  State& s = state();
  for (ThreadBuffer* b : bufs) {
    while (auto ev = b->ring.try_pop()) {
      s.sink.push_back(*ev);
    }
  }
  s.collected.store(s.sink.size(), std::memory_order_relaxed);
}

std::vector<ThreadBuffer*> snapshot_buffers() {
  State& s = state();
  MutexLock lock(s.mu);
  std::vector<ThreadBuffer*> out;
  out.reserve(s.buffers.size());
  for (auto& b : s.buffers) out.push_back(b.get());
  return out;
}

void flusher_main() {
  State& s = state();
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(s.cv_mu);
      // 50ms cadence: the default 32k-event rings absorb far more than
      // any observed production rate over that window, and each wake
      // costs real time on a loaded host (context switch + the cache
      // lines the drain touches) — waking often is pure overhead.
      s.cv.wait_for(lk, std::chrono::milliseconds(50),
                    [&] { return s.flusher_stop; });
      if (s.flusher_stop) return;
    }
    drain_all_locked_snapshot(snapshot_buffers());
  }
}

void json_escape(std::string* out, const char* str) {
  for (const char* p = str; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

void append_event_json(std::string* out, const TraceEvent& e, int tid,
                       std::uint64_t base_ns) {
  char buf[256];
  const double ts_us =
      static_cast<double>(e.ts_ns - std::min(e.ts_ns, base_ns)) / 1000.0;
  *out += "{\"name\":\"";
  json_escape(out, e.name != nullptr ? e.name : "");
  *out += "\",\"cat\":\"";
  json_escape(out, e.cat != nullptr ? e.cat : "hetsgd");
  std::snprintf(buf, sizeof(buf), "\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f",
                e.phase, tid, ts_us);
  *out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    *out += buf;
  }
  if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(e.flow));
    *out += buf;
    if (e.phase == 'f') *out += ",\"bp\":\"e\"";
  }
  if (e.phase == 'i') *out += ",\"s\":\"t\"";
  // args: both clocks plus flow/counter payload.
  *out += ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* key, double v) {
    if (!first) *out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", key, v);
    *out += buf;
  };
  if (e.phase == 'C') {
    arg("value", e.value);
  }
  if (e.vt0 != kNoVt) arg("vt0", e.vt0);
  if (e.vt1 != kNoVt) arg("vt1", e.vt1);
  if (e.flow != 0 && e.phase == 'X') {
    arg("flow", static_cast<double>(e.flow));
  }
  *out += "}}";
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::enabled() {
  // Acquire pairs with the release store in start(): a producer that
  // observes enabled==true must also observe the epoch bump, or it could
  // keep using a stale tls_slot from the previous session on
  // weakly-ordered CPUs. (On x86 the acquire is free.)
  return state().enabled.load(std::memory_order_acquire);
}

void Tracer::start(std::size_t per_thread_capacity) {
  State& s = state();
  if (s.enabled.load(std::memory_order_relaxed)) return;
  {
    MutexLock lock(s.mu);
    // Retire, never free: stale producers may still hold pointers into
    // the old rings (see State::graveyard).
    for (auto& b : s.buffers) s.graveyard.push_back(std::move(b));
    s.buffers.clear();
    s.capacity = per_thread_capacity;
    s.base_ns = wall_now_ns();
  }
  s.sink.clear();
  s.collected.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(s.cv_mu);
    s.flusher_stop = false;
  }
  // Publish the new epoch before enabling so producers re-register into
  // fresh buffers, never into freed ones.
  s.epoch.fetch_add(1, std::memory_order_release);
  s.flusher = std::thread(flusher_main);
  s.enabled.store(true, std::memory_order_release);
}

void Tracer::stop() {
  State& s = state();
  s.enabled.store(false, std::memory_order_release);
  if (s.flusher.joinable()) {
    {
      std::lock_guard<std::mutex> lk(s.cv_mu);
      s.flusher_stop = true;
    }
    s.cv.notify_all();
    s.flusher.join();
  }
  drain_all_locked_snapshot(snapshot_buffers());
}

bool Tracer::stop_and_write(const std::string& path, std::string* error) {
  State& s = state();
  stop();
  std::uint64_t base_ns = 0;
  std::uint64_t dropped_total = 0;
  std::string body;
  {
    MutexLock lock(s.mu);
    base_ns = s.base_ns;
    // Thread-name metadata tracks.
    for (auto& b : s.buffers) {
      dropped_total += b->dropped.load(std::memory_order_relaxed);
      // The fixed prefix alone is 62 chars; leave generous room for the
      // tid digits so multi-digit track ids never truncate the JSON.
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%d,\"args\":{\"name\":\"",
                    b->tid);
      body += buf;
      json_escape(&body, b->name.empty() ? "thread" : b->name.c_str());
      body += "\"}}";
      body += ",\n";
    }
  }
  // Stable timeline order helps diffing and downstream tooling.
  std::stable_sort(s.sink.begin(), s.sink.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  for (const TraceEvent& e : s.sink) {
    append_event_json(&body, e, e.tid, base_ns);
    body += ",\n";
  }
  if (!body.empty()) body.resize(body.size() - 2);  // trailing ",\n"
  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  char hdr[128];
  std::snprintf(hdr, sizeof(hdr),
                "\"dropped\":%llu,\"collected\":%llu},\n\"traceEvents\":[\n",
                static_cast<unsigned long long>(dropped_total),
                static_cast<unsigned long long>(s.sink.size()));
  out += hdr;
  out += body;
  out += "\n]}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open trace output: " + path;
    return false;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

void Tracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  if (buf == nullptr) return;
  TraceEvent copy = event;
  copy.tid = buf->tid;
  if (!buf->ring.try_push(copy)) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::set_thread_name(const std::string& name) {
  tls_slot.pending_name = name;
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  if (buf == nullptr) return;
  State& s = state();
  MutexLock lock(s.mu);
  buf->name = name;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (ThreadBuffer* b : snapshot_buffers()) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Tracer::collected() const {
  return state().collected.load(std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* cat, const char* name, double vt,
                     std::uint64_t flow)
    : cat_(cat), name_(name), vt0_(vt), vt1_(kNoVt), flow_(flow) {
  // A null name means "untraced" — callers use it to gate spans on data
  // (e.g. GEMM size thresholds) without an #if around the declaration.
  if (name_ == nullptr || !Tracer::enabled()) return;
  active_ = true;
  start_ns_ = wall_now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_ || !Tracer::enabled()) return;
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.phase = 'X';
  e.ts_ns = start_ns_;
  e.dur_ns = wall_now_ns() - start_ns_;
  e.vt0 = vt0_;
  e.vt1 = vt1_;
  e.flow = flow_;
  Tracer::record(e);
}

void trace_instant(const char* cat, const char* name, double vt,
                   std::uint64_t flow) {
  if (!Tracer::enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_ns = wall_now_ns();
  e.vt0 = vt;
  e.flow = flow;
  Tracer::record(e);
}

namespace {
void trace_flow(char phase, const char* name, std::uint64_t id, double vt) {
  if (!Tracer::enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = "flow";
  e.phase = phase;
  e.ts_ns = wall_now_ns();
  e.vt0 = vt;
  e.flow = id;
  Tracer::record(e);
}
}  // namespace

void trace_flow_begin(const char* name, std::uint64_t id, double vt) {
  trace_flow('s', name, id, vt);
}
void trace_flow_step(const char* name, std::uint64_t id, double vt) {
  trace_flow('t', name, id, vt);
}
void trace_flow_end(const char* name, std::uint64_t id, double vt) {
  trace_flow('f', name, id, vt);
}

void trace_counter(const char* name, double value) {
  if (!Tracer::enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = "metric";
  e.phase = 'C';
  e.ts_ns = wall_now_ns();
  e.value = value;
  Tracer::record(e);
}

}  // namespace hetsgd::obs

#else  // HETSGD_TRACE_DISABLED

namespace hetsgd::obs {
bool Tracer::stop_and_write(const std::string& path, std::string* error) {
  // Still emit a valid (empty) trace so tooling does not special-case
  // HETSGD_TRACE=OFF builds.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open trace output: " + path;
    return false;
  }
  const char* empty = "{\"traceEvents\":[]}\n";
  std::fwrite(empty, 1, std::char_traits<char>::length(empty), f);
  std::fclose(f);
  return true;
}
}  // namespace hetsgd::obs

#endif  // HETSGD_TRACE_DISABLED
