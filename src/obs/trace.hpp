// Dual-clock span tracer.
//
// Each instrumented thread owns a lock-free SPSC ring of TraceEvents
// (producer: the thread; sole consumer: the tracer's flusher thread).
// Events carry BOTH clocks: wall nanoseconds from obs::wall_now_ns()
// and, where available, gpusim virtual time, so a Perfetto timeline can
// be cross-referenced against the simulated schedule. Batch-id flow
// events ('s'/'t'/'f') correlate one batch's journey dispatch -> H2D ->
// kernel -> report -> ledger apply across threads.
//
// Cost model:
//  - HETSGD_TRACE=OFF (compile definition HETSGD_TRACE_DISABLED): every
//    macro and TraceSpan method is an empty inline -- zero code, zero
//    data, zero branches.
//  - Compiled in but not started: one relaxed atomic load per probe.
//  - Started: one wall_now_ns() read per edge plus an SPSC push. When a
//    ring fills the event is dropped and counted (never blocks).
//
// Thread-safety: rings are strictly single-producer/single-consumer.
// The owning thread is the producer; while the tracer is running the
// flusher thread is the only consumer; after stop() joins the flusher,
// the stopping thread takes over as (sole) consumer for the final
// drain -- the join provides the necessary happens-before edge.
#pragma once

#include <cstdint>
#include <string>

namespace hetsgd::obs {

// Sentinel for "no virtual-time stamp".
inline constexpr double kNoVt = -1.0;

// Stable flow id for one dispatched batch: workers and coordinator both
// know (worker, sequence), so either side can derive the same id
// without extra message plumbing.
inline constexpr std::uint64_t batch_flow_id(int worker,
                                             std::uint64_t sequence) {
  return (static_cast<std::uint64_t>(worker + 1) << 40) ^ sequence;
}

#if !defined(HETSGD_TRACE_DISABLED)

struct TraceEvent {
  const char* name = nullptr;  // static-lifetime strings only
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;   // wall, obs::wall_now_ns() epoch
  std::uint64_t dur_ns = 0;  // 'X' spans only
  double vt0 = kNoVt;        // virtual time at begin (kNoVt = unset)
  double vt1 = kNoVt;        // virtual time at end
  std::uint64_t flow = 0;    // batch flow id, 0 = none
  double value = 0.0;        // 'C' counter samples
  std::int32_t tid = 0;      // track id, stamped by Tracer::record
  char phase = 'i';          // 'X','i','s','t','f','C'
};

class Tracer {
 public:
  static Tracer& instance();

  // Begins collection. Idempotent while running. `per_thread_capacity`
  // is rounded up to a power of two by the ring.
  void start(std::size_t per_thread_capacity = std::size_t{1} << 15);

  // Stops collection, joins the flusher, drains every ring and writes
  // Chrome trace_event JSON ("traceEvents" array, ts/dur in
  // microseconds, virtual times under args). Safe to call when never
  // started (writes an empty but valid trace). Returns false and fills
  // *error on I/O failure.
  bool stop_and_write(const std::string& path, std::string* error);

  // Stop without writing (tests / abandoning a trace).
  void stop();

  static bool enabled();

  // Records into the calling thread's ring; registers the thread on
  // first use. No-op when not enabled.
  static void record(const TraceEvent& event);

  // Names the calling thread's track in the exported trace.
  static void set_thread_name(const std::string& name);

  // Events discarded because a ring was full (since last start()).
  std::uint64_t dropped() const;
  // Events collected so far (flushed; excludes events still in rings).
  std::uint64_t collected() const;

 private:
  Tracer() = default;
};

// RAII span: records one 'X' complete event on destruction.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, double vt = kNoVt,
            std::uint64_t flow = 0);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_end_vt(double vt) { vt1_ = vt; }
  void set_flow(std::uint64_t id) { flow_ = id; }

 private:
  const char* cat_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  double vt0_;
  double vt1_;
  std::uint64_t flow_;
  bool active_ = false;
};

void trace_instant(const char* cat, const char* name, double vt = kNoVt,
                   std::uint64_t flow = 0);
void trace_flow_begin(const char* name, std::uint64_t id, double vt = kNoVt);
void trace_flow_step(const char* name, std::uint64_t id, double vt = kNoVt);
void trace_flow_end(const char* name, std::uint64_t id, double vt = kNoVt);
void trace_counter(const char* name, double value);

#else  // HETSGD_TRACE_DISABLED: everything collapses to empty inlines.

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  void start(std::size_t = 0) {}
  bool stop_and_write(const std::string&, std::string*);
  void stop() {}
  static constexpr bool enabled() { return false; }
  static void set_thread_name(const std::string&) {}
  std::uint64_t dropped() const { return 0; }
  std::uint64_t collected() const { return 0; }
};

class TraceSpan {
 public:
  TraceSpan(const char*, const char*, double = kNoVt, std::uint64_t = 0) {}
  void set_end_vt(double) {}
  void set_flow(std::uint64_t) {}
};

inline void trace_instant(const char*, const char*, double = kNoVt,
                          std::uint64_t = 0) {}
inline void trace_flow_begin(const char*, std::uint64_t, double = kNoVt) {}
inline void trace_flow_step(const char*, std::uint64_t, double = kNoVt) {}
inline void trace_flow_end(const char*, std::uint64_t, double = kNoVt) {}
inline void trace_counter(const char*, double) {}

#endif  // HETSGD_TRACE_DISABLED

}  // namespace hetsgd::obs

// Instrumentation macros. `name`/`cat` must be string literals (the
// tracer stores the pointers, not copies).
#define HETSGD_TRACE_CONCAT2(a, b) a##b
#define HETSGD_TRACE_CONCAT(a, b) HETSGD_TRACE_CONCAT2(a, b)
// Span covering the rest of the enclosing scope.
#define HETSGD_TRACE_SCOPE(cat, name) \
  ::hetsgd::obs::TraceSpan HETSGD_TRACE_CONCAT(hetsgd_trace_span_, \
                                               __LINE__)(cat, name)
// Named span object, for setting vt/flow before it closes.
#define HETSGD_TRACE_SPAN(var, cat, name, ...) \
  ::hetsgd::obs::TraceSpan var(cat, name, ##__VA_ARGS__)
#define HETSGD_TRACE_INSTANT(...) ::hetsgd::obs::trace_instant(__VA_ARGS__)
#define HETSGD_TRACE_COUNTER(name, value) \
  ::hetsgd::obs::trace_counter(name, value)
