#include "obs/metrics.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "obs/clock.hpp"

namespace hetsgd::obs {
namespace {

void append_double(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  } else {
    // JSON has no Inf/NaN literals; null keeps the line parseable.
    std::snprintf(buf, sizeof(buf), "null");
  }
  *out += buf;
}

void append_json_key(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  *out += "\":";
}

// Prometheus metric name: the part before any embedded {label} block.
std::string bare_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Inner text of an embedded {label} block ("" when the name has none),
// so histogram series can splice their _bucket/_sum/_count suffix before
// the labels instead of dropping them.
std::string label_text(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return "";
  const std::size_t close = name.rfind('}');
  if (close == std::string::npos || close <= brace) return "";
  return name.substr(brace + 1, close - brace - 1);
}

}  // namespace

int Counter::shard_index() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void Histogram::observe(double v) {
  int bucket = 0;
  if (v > 0.0) {
    int exp = 0;
    std::frexp(v, &exp);
    bucket = exp + kExponentBias;
    if (bucket < 0) bucket = 0;
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::bucket_upper(int i) {
  return std::ldexp(1.0, i - kExponentBias);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked singleton: metric references handed out to instrumentation
  // must stay valid during static destruction of other objects.
  // hetsgd-lint: allow(naked-new) leaked singleton by design
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    HETSGD_ASSERT(it->second.kind == 'c',
                  "metric re-registered with a different kind");
    return *static_cast<Counter*>(it->second.ptr);
  }
  counters_.emplace_back();
  index_[name] = Entry{'c', &counters_.back()};
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    HETSGD_ASSERT(it->second.kind == 'g',
                  "metric re-registered with a different kind");
    return *static_cast<Gauge*>(it->second.ptr);
  }
  gauges_.emplace_back();
  index_[name] = Entry{'g', &gauges_.back()};
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    HETSGD_ASSERT(it->second.kind == 'h',
                  "metric re-registered with a different kind");
    return *static_cast<Histogram*>(it->second.ptr);
  }
  histograms_.emplace_back();
  index_[name] = Entry{'h', &histograms_.back()};
  return histograms_.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.wall_ns = wall_now_ns();
  MutexLock lock(mu_);
  snap.samples.reserve(index_.size());
  for (const auto& [name, entry] : index_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case 'c':
        sample.value =
            static_cast<double>(static_cast<Counter*>(entry.ptr)->value());
        break;
      case 'g':
        sample.value = static_cast<Gauge*>(entry.ptr)->value();
        break;
      case 'h':
        sample.hist = static_cast<Histogram*>(entry.ptr)->snapshot();
        break;
      default:
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

std::string MetricsRegistry::prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  char buf[128];
  for (const MetricSample& s : snap.samples) {
    const std::string base = bare_name(s.name);
    switch (s.kind) {
      case 'c':
        out += "# TYPE " + base + " counter\n";
        out += s.name + ' ';
        std::snprintf(buf, sizeof(buf), "%llu\n",
                      static_cast<unsigned long long>(s.value));
        out += buf;
        break;
      case 'g':
        out += "# TYPE " + base + " gauge\n";
        out += s.name + ' ';
        append_double(&out, s.value);
        out += '\n';
        break;
      case 'h': {
        // Labels from the registered name survive on every series; le is
        // merged into the existing label block on _bucket lines.
        const std::string labels = label_text(s.name);
        const std::string plain = labels.empty() ? "" : "{" + labels + "}";
        const std::string bucket_open =
            "_bucket{" + (labels.empty() ? "" : labels + ",");
        out += "# TYPE " + base + " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (s.hist.counts[i] == 0) continue;
          cumulative += s.hist.counts[i];
          std::snprintf(buf, sizeof(buf), "le=\"%.9g\"} %llu\n",
                        Histogram::bucket_upper(i),
                        static_cast<unsigned long long>(cumulative));
          out += base + bucket_open + buf;
        }
        std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %llu\n",
                      static_cast<unsigned long long>(s.hist.count));
        out += base + bucket_open + buf;
        out += base + "_sum" + plain + ' ';
        append_double(&out, s.hist.sum);
        out += '\n';
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(s.hist.count));
        out += base + "_count" + plain + buf;
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::jsonl_line(const MetricsSnapshot& snap) {
  std::string out = "{\"ts_ns\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(snap.wall_ns));
  out += buf;
  out += ",\"metrics\":{";
  bool first = true;
  for (const MetricSample& s : snap.samples) {
    if (!first) out += ',';
    first = false;
    append_json_key(&out, s.name);
    if (s.kind == 'h') {
      out += "{\"count\":";
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(s.hist.count));
      out += buf;
      out += ",\"sum\":";
      append_double(&out, s.hist.sum);
      out += '}';
    } else {
      append_double(&out, s.value);
    }
  }
  out += "}}\n";
  return out;
}

}  // namespace hetsgd::obs
