// Observability wall clock: the single sanctioned raw-clock read site.
//
// Everything in src/obs stamps events with nanoseconds from a
// process-global steady epoch so spans recorded on different threads
// land on one comparable timeline. Instrumented code outside obs/ must
// go through the HETSGD_TRACE_* macros or obs::WallStopwatch instead of
// reading std::chrono clocks directly (enforced by the `adhoc-timer`
// lint rule).
#pragma once

#include <chrono>
#include <cstdint>

namespace hetsgd::obs {

// Nanoseconds since an arbitrary process-global steady epoch.
inline std::uint64_t wall_now_ns() {
  // The obs clock shim is the sanctioned raw-clock read site (the lint's
  // wall-clock rule is src/core/-scoped; everything in core borrows real
  // time through here).
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimal stopwatch for code that needs elapsed wall time (e.g. the
// trainer's wall_seconds result) without touching std::chrono itself.
class WallStopwatch {
 public:
  WallStopwatch() : start_ns_(wall_now_ns()) {}
  void reset() { start_ns_ = wall_now_ns(); }
  double elapsed_seconds() const {
    return static_cast<double>(wall_now_ns() - start_ns_) * 1e-9;
  }

 private:
  std::uint64_t start_ns_;
};

}  // namespace hetsgd::obs
