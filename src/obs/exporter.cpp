#include "obs/exporter.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/cli.hpp"
#include "common/logging.hpp"

namespace hetsgd::obs {

void register_obs_flags(CliParser& parser, ObsOptions* options) {
  parser.add_string("trace-out", &options->trace_out,
                    "write a dual-clock Chrome trace_event JSON here "
                    "(open in Perfetto); empty disables tracing");
  parser.add_string("metrics-out", &options->metrics_out,
                    "append periodic metrics snapshots (JSONL) here; "
                    "empty disables the exporter");
  parser.add_double("metrics-interval", &options->metrics_interval_ms,
                    "metrics snapshot period in milliseconds");
  parser.add_int("metrics-port", &options->metrics_port,
                 "serve Prometheus text on 127.0.0.1:<port> "
                 "(0 = ephemeral, -1 = off)");
  parser.add_int("trace-buffer", &options->trace_buffer,
                 "per-thread trace ring capacity in events "
                 "(rounded up to a power of two)");
}

MetricsExporter::MetricsExporter(Options options)
    : options_(std::move(options)) {}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::set_collect_hook(std::function<void()> hook) {
  collect_hook_ = std::move(hook);
}

bool MetricsExporter::start(std::string* error) {
  if (running_.load(std::memory_order_relaxed)) return true;
  if (!options_.jsonl_path.empty()) {
    jsonl_ = std::fopen(options_.jsonl_path.c_str(), "w");
    if (jsonl_ == nullptr) {
      if (error != nullptr) {
        *error = "cannot open metrics output: " + options_.jsonl_path;
      }
      return false;
    }
  }
  if (options_.port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
      if (jsonl_ != nullptr) {
        std::fclose(jsonl_);
        jsonl_ = nullptr;
      }
      return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 4) != 0) {
      if (error != nullptr) {
        *error = "cannot bind scrape port: " + std::string(strerror(errno));
      }
      ::close(fd);
      if (jsonl_ != nullptr) {
        std::fclose(jsonl_);
        jsonl_ = nullptr;
      }
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    listen_fd_.store(fd);
    scrape_port_.store(ntohs(addr.sin_port));
  }
  {
    MutexLock lock(cv_mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  exporter_ = std::thread(&MetricsExporter::exporter_main, this);
  if (listen_fd_.load() >= 0) {
    scraper_ = std::thread(&MetricsExporter::scrape_main, this);
  }
  return true;
}

void MetricsExporter::stop() {
  if (!running_.exchange(false)) return;
  {
    MutexLock lock(cv_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a blocking accept(); close() releases the port.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (exporter_.joinable()) exporter_.join();
  if (scraper_.joinable()) scraper_.join();
  write_snapshot();  // final snapshot after the threads are gone
  if (jsonl_ != nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
  scrape_port_.store(-1);
}

void MetricsExporter::write_snapshot() {
  if (collect_hook_) collect_hook_();
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  if (jsonl_ != nullptr) {
    const std::string line = MetricsRegistry::jsonl_line(snap);
    std::fwrite(line.data(), 1, line.size(), jsonl_);
    std::fflush(jsonl_);
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsExporter::exporter_main() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.interval_ms > 0.0 ? options_.interval_ms : 250.0);
  for (;;) {
    {
      MutexLock lock(cv_mu_);
      // Check the flag before (and after) waiting: a stop() that fires
      // while write_snapshot runs must not cost a full extra interval.
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!stop_requested_) {
        if (cv_.wait_until(cv_mu_, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (stop_requested_) return;
    }
    write_snapshot();
  }
}

void MetricsExporter::scrape_main() {
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0) return;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load(std::memory_order_relaxed)) return;
      continue;
    }
    // Drain (and ignore) whatever request line the client sent.
    char discard[512];
    (void)::recv(client, discard, sizeof(discard), MSG_DONTWAIT);
    if (collect_hook_) collect_hook_();
    const std::string text = MetricsRegistry::prometheus_text(
        MetricsRegistry::instance().snapshot());
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " +
        std::to_string(text.size()) + "\r\n\r\n" + text;
    const char* p = response.data();
    std::size_t left = response.size();
    while (left > 0) {
      const ssize_t n = ::send(client, p, left, MSG_NOSIGNAL);
      if (n <= 0) break;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    ::close(client);
  }
}

}  // namespace hetsgd::obs
