// Periodic metrics snapshot exporter + optional Prometheus scrape
// endpoint, plus the observability CLI surface (ObsOptions /
// register_obs_flags) shared by every binary.
//
// The exporter thread wakes every interval, runs the collect hook (the
// trainer installs a scraper there that reads the live UpdateLedger),
// snapshots the registry and appends one JSONL line. With port >= 0 a
// second thread serves the current snapshot as Prometheus text
// (text/plain; version=0.0.4) on 127.0.0.1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace hetsgd {
class CliParser;
}  // namespace hetsgd

namespace hetsgd::obs {

// CLI-facing observability options (see register_obs_flags).
struct ObsOptions {
  std::string trace_out;    // Chrome trace JSON path; empty = tracing off
  std::string metrics_out;  // JSONL path; empty = no periodic export
  double metrics_interval_ms = 250.0;
  std::int64_t metrics_port = -1;  // scrape port; -1 = off, 0 = ephemeral
  std::int64_t trace_buffer = std::int64_t{1} << 15;  // events/thread
};

// Registers --trace-out / --metrics-out / --metrics-interval (and the
// auxiliary --metrics-port / --trace-buffer) on the parser.
void register_obs_flags(CliParser& parser, ObsOptions* options);

class MetricsExporter {
 public:
  struct Options {
    std::string jsonl_path;       // empty = no file export
    double interval_ms = 250.0;
    int port = -1;                // -1 = no scrape endpoint
  };

  explicit MetricsExporter(Options options);
  ~MetricsExporter();  // calls stop()

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  // Runs on the exporter thread immediately before each snapshot; must
  // be installed before start().
  void set_collect_hook(std::function<void()> hook);

  // Returns false (with *error) if the output file or socket cannot be
  // set up. Idempotent while running.
  bool start(std::string* error);

  // Takes one final snapshot, flushes, joins threads. Idempotent.
  void stop();

  // Actual bound scrape port (after start with port >= 0), else -1.
  int scrape_port() const { return scrape_port_.load(); }
  std::uint64_t snapshots_written() const { return snapshots_.load(); }

 private:
  void exporter_main();
  void scrape_main();
  void write_snapshot();

  Options options_;
  std::function<void()> collect_hook_;
  std::atomic<bool> running_{false};
  std::atomic<int> scrape_port_{-1};
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<int> listen_fd_{-1};
  std::FILE* jsonl_ = nullptr;  // exporter thread only (and stop() after join)
  std::thread exporter_;
  std::thread scraper_;
  AnnotatedMutex cv_mu_;
  std::condition_variable_any cv_;
  bool stop_requested_ HETSGD_GUARDED_BY(cv_mu_) = false;
};

}  // namespace hetsgd::obs
