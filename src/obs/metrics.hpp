// Process-global metrics registry: lock-free counters/gauges/histograms
// with periodic snapshots (JSONL) and Prometheus text exposition.
//
// Concurrency contract (PR 3 annotations apply):
//  - Counter::inc is wait-free: each thread round-robins onto one of 16
//    cache-line-aligned shards and does a relaxed fetch_add. value()
//    sums the shards (racy-by-design monotonic read).
//  - Gauge uses a single atomic payload (set is a store, add a CAS loop).
//  - Histogram buckets are power-of-two wide (frexp exponent), each an
//    atomic count; sum is a CAS-looped atomic double.
//  - Registration (find-or-create by name) takes the registry mutex and
//    is expected to be cold: hot paths must cache the returned
//    reference, which stays valid for process lifetime (deque storage,
//    metrics are never removed).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/macros.hpp"
#include "common/thread_annotations.hpp"

namespace hetsgd::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kShards = 16;
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static int shard_index();
  Shard shards_[kShards];
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-spaced histogram: bucket i counts values whose binary exponent
// is i - kExponentBias, i.e. upper edge 2^(i - kExponentBias). Covers
// ~0.5ns to ~4e9 when observing seconds.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kExponentBias = 31;

  void observe(double v);

  struct Snapshot {
    std::uint64_t counts[kBuckets] = {};
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  Snapshot snapshot() const;

  // Upper edge of bucket i (seconds if observations are seconds).
  static double bucket_upper(int i);

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

struct MetricSample {
  std::string name;
  char kind = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
  double value = 0.0;
  Histogram::Snapshot hist;  // kind == 'h' only
};

struct MetricsSnapshot {
  std::uint64_t wall_ns = 0;
  std::vector<MetricSample> samples;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Find-or-create. References remain valid for process lifetime; hot
  // paths must cache them. Registering the same name with a different
  // kind aborts.
  Counter& counter(const std::string& name) HETSGD_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) HETSGD_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) HETSGD_EXCLUDES(mu_);

  MetricsSnapshot snapshot() const HETSGD_EXCLUDES(mu_);

  // Prometheus text exposition (text/plain; version=0.0.4).
  static std::string prometheus_text(const MetricsSnapshot& snap);
  // One JSON object per line: {"ts_ns":...,"metrics":{...}}.
  static std::string jsonl_line(const MetricsSnapshot& snap);

 private:
  MetricsRegistry() = default;

  mutable AnnotatedMutex mu_;
  // deques: stable addresses under growth.
  std::deque<Counter> counters_ HETSGD_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ HETSGD_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ HETSGD_GUARDED_BY(mu_);
  struct Entry {
    char kind;
    void* ptr;
  };
  std::map<std::string, Entry> index_ HETSGD_GUARDED_BY(mu_);
};

}  // namespace hetsgd::obs
