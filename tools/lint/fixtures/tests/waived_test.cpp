// hetsgd-lint: allow(test-registration) fixture: intentionally manual test
int main() { return 0; }
