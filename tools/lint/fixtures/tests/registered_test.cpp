// Registered in the fixture CMakeLists.txt: no finding.
int main() { return 0; }
