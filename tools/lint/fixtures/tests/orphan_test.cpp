// EXPECT: test-registration
int main() { return 0; }
