// Clean fixture for hetsgd-lint --self-test: realistic core-style code
// that must produce zero findings.
#include <cstdio>
#include <memory>
#include <vector>
// hetsgd-lint: allow(gpusim-include) fixture: sanctioned device unit test
#include "gpusim/device.hpp"

namespace fixture {

struct Mailbox {
  bool send(int) { return true; }
};

struct Renewal {  // identifier containing "new" — not a new-expression
  int newest = 0;
  void renew() { newest += 1; }
};

bool dispatch(Mailbox& box, std::vector<int>& pool) {
  // Checked send, container-owned memory, stderr logging only.
  if (!box.send(42)) {
    std::fprintf(stderr, "send failed: mailbox closed\n");
    return false;
  }
  auto owned = std::make_unique<Renewal>();
  owned->renew();
  pool.push_back(owned->newest);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", owned->newest);
  return true;
}

}  // namespace fixture
