// Seeded-violation fixture for hetsgd-lint --self-test.
//
// Every line tagged `// EXPECT: <rule>` must be reported by the linter;
// anything else in this file must NOT be. This file is never compiled —
// it exists only to pin the linter's behavior.
#include <chrono>
#include <fstream>
#include <thread>
#include "common/timer.hpp"  // EXPECT: adhoc-timer
#include "gpusim/device.hpp"  // EXPECT: gpusim-include

namespace fixture {

// hetsgd-lint: allow(adhoc-timer) fixture: local stand-in for the retired
// class so the use sites below have something to name
struct WallTimer {
  double seconds() const { return 0.0; }
};

struct Queue {
  bool push(int) { return true; }
  bool send(int) { return true; }
};

void planted_violations(Queue& q, Queue* qp) {
  q.push(1);  // EXPECT: unchecked-push
  qp->send(2);  // EXPECT: unchecked-push
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // EXPECT: wall-clock
  auto t0 = std::chrono::steady_clock::now();  // EXPECT: wall-clock
  (void)t0;
  int* leak = new int(7);  // EXPECT: naked-new
  delete leak;  // EXPECT: naked-new
  std::printf("hello\n");  // EXPECT: stdout-logging
  std::ofstream raw("ckpt.bin");  // EXPECT: ckpt-ofstream
  (void)raw;
  WallTimer timer;  // EXPECT: adhoc-timer
  (void)timer.seconds();
}

void checked_and_waived(Queue& q) {
  // Checked results: none of these may be flagged.
  if (!q.push(1)) return;
  bool ok = q.send(2);
  (void)ok;
  // hetsgd-lint: allow(unchecked-push) fixture: fire-and-forget wakeup
  q.push(3);
  // hetsgd-lint: allow(wall-clock) fixture: deterministic injected stall
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // A comment that merely *mentions* steady_clock::now or new Thing or
  // printf( must not be flagged; nor must "printf(" in a string literal:
  const char* s = "printf(%d) sleep_for new delete std::ofstream WallTimer";
  (void)s;
  // hetsgd-lint: allow(adhoc-timer) fixture: sanctioned timing shim
  WallTimer waived_timer;
  (void)waived_timer.seconds();
  // hetsgd-lint: allow(ckpt-ofstream) fixture: sanctioned write shim
  std::ofstream waived("shim.bin");
  (void)waived;
}

}  // namespace fixture
