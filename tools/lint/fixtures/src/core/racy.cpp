// Fixture: a documented sanctioned race site, matching the fixture
// tsan.supp entry `race:fixture::sanctioned_race`.
namespace fixture {

// hetsgd-racy: fixture stand-in for a Hogwild update — intentionally
// unsynchronized shared write, suppressed by symbol name.
void sanctioned_race(float* shared, float delta) { *shared += delta; }

}  // namespace fixture
