#!/usr/bin/env python3
"""hetsgd-lint: file-scope concurrency-contract checks for the hetsgd tree.

Rules (each a short, greppable id):

  unchecked-push    A `queue.push(...)` / `actor.send(...)` whose boolean
                    result is discarded. Both return false when the target
                    is closed; dropping the result silently loses a message
                    and breaks the ledger invariant
                    dispatched == reported + reclaimed.

  wall-clock        Wall-clock constructs (`steady_clock::now`,
                    `system_clock::now`, `time(`, `sleep_for`,
                    `sleep_until`) inside src/core/. Core scheduling runs
                    on virtual time; real time is allowed only in the
                    designated shims (actor idle ticks, injected stalls)
                    which carry waivers.

  naked-new         `new` / `delete` expressions outside the lock-free
                    queue node internals. Everything else owns memory via
                    containers / unique_ptr.

  stdout-logging    `std::cout` or a bare `printf(` in src/. Diagnostics go
                    through HETSGD_LOG_* (stderr); stdout is reserved for
                    program output (CSV, --help).

  ckpt-ofstream     A raw `std::ofstream` in src/core/ or src/nn/. Durable
                    training state (checkpoints, models) must go through
                    atomic_write_file (tmp + flush + rename) so a crash can
                    never leave a torn file; src/common/atomic_file.cpp is
                    the one sanctioned raw-write site.

  adhoc-timer       Ad-hoc timing in src/core/ or src/gpusim/: the retired
                    `WallTimer` class, an include of common/timer.hpp, or
                    (in gpusim, which the wall-clock rule does not cover) a
                    raw clock read. Instrumentation goes through src/obs/
                    — HETSGD_TRACE_* spans, obs::WallStopwatch, or the
                    metrics registry — so every measurement lands in the
                    exported trace/metrics streams instead of a private
                    timer.

  gpusim-include    A direct `#include "gpusim/..."` outside src/backend/
                    and src/gpusim/ (scanned across src/, tests/, bench/
                    and examples/). The simulated device is an
                    implementation detail behind the backend seam; code
                    reaches it through backend/backend.hpp or
                    backend/device_model.hpp. gpusim's own unit tests
                    carry waivers.

  tsan-supp-stale   A `race:<symbol>` entry in scripts/tsan.supp whose
                    symbol no longer exists in src/, or whose defining file
                    lacks a `hetsgd-racy` marker. Keeps the suppression
                    file honest: every suppressed symbol must be a
                    documented, sanctioned race site.

  test-registration A `tests/*_test.cpp` file that is not registered in
                    tests/CMakeLists.txt. An orphaned test file compiles
                    in nobody's build and silently never runs — the suite
                    looks green while the coverage it was written for is
                    gone.

Waivers: a line (or the line above it) containing
    // hetsgd-lint: allow(<rule>) <justification>
suppresses that rule at that site. The justification is mandatory.

Exit status: 0 = clean, 1 = findings, 2 = usage/config error.

Usage:
    tools/lint/hetsgd_lint.py [--root DIR] [--compile-commands PATH]
    tools/lint/hetsgd_lint.py --self-test
If --compile-commands is given (or build/compile_commands.json exists),
only translation units listed there (plus all headers) are scanned, so
dead/excluded files cannot mask or add findings.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl")
HEADER_EXTENSIONS = (".hpp", ".hh", ".h", ".inl")

WAIVER_RE = re.compile(r"//\s*hetsgd-lint:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?$")

# unchecked-push: a push()/send() call used as a full statement. Checked
# uses appear inside if/while/return/assignment/HETSGD_ASSERT/(void) etc.,
# all of which put tokens other than whitespace/`}` before the call on the
# line.
PUSH_STMT_RE = re.compile(
    r"^\s*(?:\}\s*)?[A-Za-z_][\w.\->:\[\]]*(?:\.|->)(?:push|send)\s*\("
)

WALL_CLOCK_RE = re.compile(
    r"steady_clock::now|system_clock::now|high_resolution_clock::now"
    r"|\bsleep_for\b|\bsleep_until\b|[^\w.:]time\s*\(\s*(?:NULL|nullptr|0|&)"
)

NAKED_NEW_RE = re.compile(r"(?:^|[^\w.])new\s+[A-Za-z_(]|(?:^|[^\w.])delete\s+[\w(]|delete\[\]")

STDOUT_RE = re.compile(r"std::cout\b|(?:^|[^\w:.])(?:std::)?printf\s*\(")

CKPT_OFSTREAM_RE = re.compile(r"\bstd::ofstream\b|(?:^|[^\w:.])ofstream\b")

ADHOC_TIMER_RE = re.compile(r"\bWallTimer\b")

TIMER_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]common/timer\.hpp[>"]')

GPUSIM_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"gpusim/')

SUPP_RE = re.compile(r"^\s*race:(\S+)")

STRING_OR_CHAR_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')
LINE_COMMENT_RE = re.compile(r"//.*$")


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def format(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_code(line: str) -> tuple[str, str]:
    """Returns (code, comment): string/char literals blanked, comment split off."""
    blanked = STRING_OR_CHAR_RE.sub(lambda m: '"' + " " * (len(m.group(0)) - 2) + '"',
                                    line)
    m = LINE_COMMENT_RE.search(blanked)
    if m:
        return blanked[: m.start()], line[m.start():]
    return blanked, ""


def waiver_rules(lines: list[str], idx: int) -> dict[str, bool]:
    """Waivers that apply to line `idx` (same line or the line(s) above)."""
    rules: dict[str, bool] = {}
    for probe in (idx, idx - 1, idx - 2):
        if probe < 0 or probe >= len(lines):
            continue
        m = WAIVER_RE.search(lines[probe])
        if m:
            rules[m.group(1)] = bool(m.group(2))
        elif probe < idx and lines[probe].strip().startswith("//"):
            # A waiver's justification may wrap onto a continuation comment
            # line between the waiver and the code; keep scanning upward.
            continue
    return rules


def iter_source_files(root: str, compile_commands: str | None):
    """Yields absolute paths of C++ files under src/ (and tools fixtures are
    NOT included — they are linted only by --self-test)."""
    src = os.path.join(root, "src")
    tu_allow: set[str] | None = None
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands, encoding="utf-8") as f:
                entries = json.load(f)
            tu_allow = set()
            for e in entries:
                p = e.get("file", "")
                if not os.path.isabs(p):
                    p = os.path.join(e.get("directory", root), p)
                tu_allow.add(os.path.realpath(p))
        except (json.JSONDecodeError, OSError) as err:
            print(f"hetsgd-lint: bad compile_commands {compile_commands}: {err}",
                  file=sys.stderr)
            sys.exit(2)
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            if not name.endswith(CXX_EXTENSIONS):
                continue
            path = os.path.realpath(os.path.join(dirpath, name))
            if (tu_allow is not None and not name.endswith(HEADER_EXTENSIONS)
                    and path not in tu_allow):
                continue  # TU not in the build — skip, it may not even compile
            yield path


def in_core(root: str, path: str) -> bool:
    rel = os.path.relpath(path, root)
    return rel.startswith(os.path.join("src", "core") + os.sep)


def in_timer_scope(root: str, path: str) -> bool:
    """Where the obs layer is mandatory for timing: core scheduling and the
    gpusim device model. src/obs/ itself (outside this scope) is the
    sanctioned raw-clock site."""
    rel = os.path.relpath(path, root)
    return (rel.startswith(os.path.join("src", "core") + os.sep)
            or rel.startswith(os.path.join("src", "gpusim") + os.sep))


def in_ckpt_scope(root: str, path: str) -> bool:
    """Where durable state is written: raw ofstreams are banned in favor of
    atomic_write_file. src/common/atomic_file.cpp (outside this scope) is
    the sanctioned implementation site."""
    rel = os.path.relpath(path, root)
    return (rel.startswith(os.path.join("src", "core") + os.sep)
            or rel.startswith(os.path.join("src", "nn") + os.sep))


def in_gpusim_seam(root: str, path: str) -> bool:
    """The only directories allowed to include gpusim headers directly: the
    backend seam (SimBackend wraps the device) and gpusim itself."""
    rel = os.path.relpath(path, root)
    return (rel.startswith(os.path.join("src", "backend") + os.sep)
            or rel.startswith(os.path.join("src", "gpusim") + os.sep))


def allow_naked_new(root: str, path: str) -> bool:
    """Queue node internals are the one sanctioned home of new/delete."""
    rel = os.path.relpath(path, root)
    return os.path.basename(rel) in ("mpsc_queue.hpp", "spsc_ring.hpp")


def lint_file(root: str, path: str, findings: list[Finding]) -> None:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as err:
        print(f"hetsgd-lint: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)

    core = in_core(root, path)
    for i, raw in enumerate(lines):
        code, _comment = strip_code(raw)
        if not code.strip():
            continue
        waived = waiver_rules(lines, i)

        def report(rule: str, message: str) -> None:
            if rule in waived:
                return
            findings.append(Finding(rule, path, i + 1, message))

        if PUSH_STMT_RE.search(code):
            report("unchecked-push",
                   "push()/send() result discarded — both return false on a "
                   "closed target; check it or cast to (void) with a waiver")
        if core and WALL_CLOCK_RE.search(code):
            report("wall-clock",
                   "wall-clock construct in src/core/ — scheduling is "
                   "virtual-time only; real time needs a waiver naming why")
        if in_timer_scope(root, path):
            if ADHOC_TIMER_RE.search(code) or TIMER_INCLUDE_RE.search(raw):
                report("adhoc-timer",
                       "ad-hoc timer in core/gpusim — instrument with the "
                       "obs layer (HETSGD_TRACE_* spans, obs::WallStopwatch, "
                       "metrics registry) so the measurement is exported")
            elif not core and WALL_CLOCK_RE.search(code):
                report("adhoc-timer",
                       "raw clock read in src/gpusim/ — the device model is "
                       "virtual-time only; wall-time instrumentation goes "
                       "through the obs layer")
        if GPUSIM_INCLUDE_RE.search(raw) and not in_gpusim_seam(root, path):
            report("gpusim-include",
                   "direct gpusim include outside src/backend/ and "
                   "src/gpusim/ — go through the backend seam "
                   "(backend/backend.hpp, backend/device_model.hpp)")
        if in_ckpt_scope(root, path) and CKPT_OFSTREAM_RE.search(code):
            report("ckpt-ofstream",
                   "raw std::ofstream in checkpoint scope — durable state "
                   "must go through atomic_write_file (torn-write safety); "
                   "src/common/atomic_file.cpp is the sanctioned site")
        if NAKED_NEW_RE.search(code) and not allow_naked_new(root, path):
            report("naked-new",
                   "naked new/delete outside queue node internals — use "
                   "containers or unique_ptr")
        if STDOUT_RE.search(code) and "fprintf" not in code \
                and "snprintf" not in code and "vsnprintf" not in code \
                and "format(printf" not in code:
            report("stdout-logging",
                   "stdout write in src/ — diagnostics go through "
                   "HETSGD_LOG_* (stderr)")


def lint_gpusim_includes_outside_src(root: str,
                                     findings: list[Finding]) -> None:
    """Applies only the gpusim-include rule to tests/, bench/ and examples/
    (the full rule set is src/-scoped by design, but the backend seam must
    hold tree-wide or the equivalence suite quietly re-couples to gpusim)."""
    for top in ("tests", "bench", "examples"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.realpath(os.path.join(dirpath, name))
                try:
                    with open(path, encoding="utf-8", errors="replace") as f:
                        lines = f.read().splitlines()
                except OSError:
                    continue
                for i, raw in enumerate(lines):
                    if not GPUSIM_INCLUDE_RE.search(raw):
                        continue
                    if "gpusim-include" in waiver_rules(lines, i):
                        continue
                    findings.append(Finding(
                        "gpusim-include", path, i + 1,
                        "direct gpusim include outside src/backend/ and "
                        "src/gpusim/ — go through the backend seam "
                        "(backend/backend.hpp, backend/device_model.hpp)"))


def lint_tsan_supp(root: str, findings: list[Finding]) -> None:
    supp = os.path.join(root, "scripts", "tsan.supp")
    if not os.path.exists(supp):
        return
    src = os.path.join(root, "src")
    contents: dict[str, str] = {}
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in filenames:
            if name.endswith(CXX_EXTENSIONS):
                p = os.path.join(dirpath, name)
                try:
                    with open(p, encoding="utf-8", errors="replace") as f:
                        contents[p] = f.read()
                except OSError:
                    continue
    with open(supp, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            m = SUPP_RE.match(raw)
            if not m:
                continue
            symbol = m.group(1)
            # The last :: component that looks like an identifier must
            # appear in some source file. `operator=` is matched verbatim.
            leaf = symbol.rsplit("::", 1)[-1]
            defining = [p for p, text in contents.items() if leaf in text]
            if not defining:
                findings.append(Finding(
                    "tsan-supp-stale", supp, lineno,
                    f"suppressed symbol '{symbol}' not found anywhere in "
                    f"src/ — remove or update the entry"))
                continue
            if not any("hetsgd-racy" in contents[p] for p in defining):
                findings.append(Finding(
                    "tsan-supp-stale", supp, lineno,
                    f"suppressed symbol '{symbol}' has no 'hetsgd-racy' "
                    f"marker at any defining site — every suppression must "
                    f"point at a documented sanctioned race"))


def lint_test_registration(root: str, findings: list[Finding]) -> None:
    """Every tests/*_test.cpp must be named in tests/CMakeLists.txt
    (hetsgd_test(<stem>) or an explicit add_executable)."""
    tests_dir = os.path.join(root, "tests")
    cml = os.path.join(tests_dir, "CMakeLists.txt")
    if not os.path.isdir(tests_dir) or not os.path.exists(cml):
        return
    try:
        with open(cml, encoding="utf-8") as f:
            cml_text = f.read()
    except OSError:
        return
    for name in sorted(os.listdir(tests_dir)):
        if not name.endswith("_test.cpp"):
            continue
        stem = name[: -len(".cpp")]
        if re.search(rf"\b{re.escape(stem)}\b", cml_text):
            continue
        path = os.path.join(tests_dir, name)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError:
            lines = []
        if "test-registration" in waiver_rules(lines, 0):
            continue
        findings.append(Finding(
            "test-registration", path, 1,
            f"{name} is not registered in tests/CMakeLists.txt — the test "
            f"never builds or runs; add hetsgd_test({stem}) (or waive it "
            f"with a reason if it is intentionally manual)"))


def run_lint(root: str, compile_commands: str | None) -> int:
    findings: list[Finding] = []
    for path in iter_source_files(root, compile_commands):
        lint_file(root, path, findings)
    lint_gpusim_includes_outside_src(root, findings)
    lint_tsan_supp(root, findings)
    lint_test_registration(root, findings)
    for f in findings:
        print(f.format(root))
    if findings:
        print(f"hetsgd-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("hetsgd-lint: clean")
    return 0


def self_test(root: str) -> int:
    """Lints the seeded-violation fixtures (must find every planted issue)
    and the clean fixture (must find none)."""
    fixtures = os.path.join(root, "tools", "lint", "fixtures")
    bad = os.path.join(fixtures, "src", "core", "violations.cpp")
    clean = os.path.join(fixtures, "src", "core", "clean.cpp")
    supp_root = fixtures
    failures: list[str] = []

    findings: list[Finding] = []
    lint_file(supp_root, bad, findings)
    lint_tsan_supp(supp_root, findings)
    lint_test_registration(supp_root, findings)
    got = {(f.rule, os.path.basename(f.path), f.line) for f in findings}

    expected = set()
    with open(bad, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = re.search(r"//\s*EXPECT:\s*([a-z0-9-]+)", line)
            if m:
                expected.add((m.group(1), os.path.basename(bad), lineno))
    tests_fix = os.path.join(supp_root, "tests")
    if os.path.isdir(tests_fix):
        for name in sorted(os.listdir(tests_fix)):
            if not name.endswith(".cpp"):
                continue
            with open(os.path.join(tests_fix, name), encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = re.search(r"//\s*EXPECT:\s*([a-z0-9-]+)", line)
                    if m:
                        expected.add((m.group(1), name, lineno))
    with open(os.path.join(supp_root, "scripts", "tsan.supp"),
              encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if "EXPECT-STALE" in line:
                expected.add(("tsan-supp-stale", "tsan.supp", lineno))

    missed = expected - got
    spurious = {g for g in got if g not in expected
                and not (g[0] == "tsan-supp-stale" and g[1] == "tsan.supp")}
    # Stale-supp findings are matched by rule+file only (line drift is fine)
    # when an EXPECT-STALE exists anywhere in the fixture supp file.
    stale_expected = any(e[0] == "tsan-supp-stale" for e in expected)
    stale_got = any(g[0] == "tsan-supp-stale" for g in got)
    missed = {e for e in missed if e[0] != "tsan-supp-stale"}
    if stale_expected and not stale_got:
        failures.append("tsan-supp-stale: planted stale entry not detected")

    for rule, name, line in sorted(missed):
        failures.append(f"{rule}: planted violation at {name}:{line} not "
                        f"detected")
    for rule, name, line in sorted(spurious):
        failures.append(f"{rule}: spurious finding at {name}:{line}")

    clean_findings: list[Finding] = []
    lint_file(supp_root, clean, clean_findings)
    for f in clean_findings:
        failures.append(f"clean fixture flagged: {f.format(supp_root)}")

    if failures:
        for msg in failures:
            print(f"hetsgd-lint self-test FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"hetsgd-lint self-test OK "
          f"({len(expected)} planted violations detected, clean fixture clean)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json path "
                             "(default: <root>/build/compile_commands.json "
                             "if present)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded fixtures instead of the tree")
    args = parser.parse_args()

    here = os.path.dirname(os.path.realpath(__file__))
    root = os.path.realpath(args.root) if args.root else \
        os.path.realpath(os.path.join(here, "..", ".."))
    if not os.path.isdir(os.path.join(root, "src")) and not args.self_test:
        print(f"hetsgd-lint: {root} has no src/ directory", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    cc = args.compile_commands
    if cc is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        cc = default_cc if os.path.exists(default_cc) else None
    return run_lint(root, cc)


if __name__ == "__main__":
    sys.exit(main())
