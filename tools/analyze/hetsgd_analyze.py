#!/usr/bin/env python3
"""hetsgd-analyze: semantic invariant checks for the hetsgd tree.

Where tools/lint/hetsgd_lint.py guards file-scope *textual* contracts,
this analyzer checks invariants that only exist at the level of program
structure — struct layouts, lock-acquisition nesting, variant dispatch,
atomic call expressions. It parses the tree into a small syntactic index
(token stream + scope tree) and runs five rules over it:

  ckpt-field-coverage   Every non-static data member of
                        core::TrainingCheckpoint and the structs it embeds
                        (WorkerCheckpoint, WorkerStats, LossPoint,
                        RngState, ...) must be referenced in both the
                        write_training_checkpoint and
                        read_training_checkpoint serialization closures
                        (the functions themselves plus same-file helpers
                        they call). "Added a field, forgot to serialize
                        it" becomes a build break instead of a resumed run
                        that silently diverges. Types with their own
                        envelope serializer (nn::Model) are opaque here.

  lock-order            Builds the static lock-acquisition graph: an edge
                        A -> B whenever a MutexLock scope for B opens
                        while A is held — lexically nested scopes, scopes
                        inside HETSGD_REQUIRES(A) functions, and calls
                        made with A held into functions that (transitively)
                        acquire B. Any cycle in that graph is a potential
                        deadlock and is reported with the witness path.

  msg-exhaustive        Every dispatch over the msg::Message variant (a
                        std::holds_alternative chain or std::visit) must
                        account for ALL alternatives: each one either
                        handled by a branch or explicitly declared
                        uninteresting in a
                          // hetsgd-analyze: dispatch ignores(A, B, ...)
                        annotation above the dispatch. A terminal
                        log-and-drop else does NOT count — that is exactly
                        the stale dispatcher this rule exists to flag when
                        a new message kind is added.

  atomic-discipline     Every memory_order_relaxed operation must sit on
                        an allowlisted atomic field (the lock-free queue /
                        barrier internals and the obs counters, listed in
                        ALLOWED_RELAXED below). Everything else must use
                        acquire/release or stronger — benign *non-atomic*
                        races belong in scripts/tsan.supp (the single
                        source of truth, cross-checked by hetsgd-lint's
                        tsan-supp-stale rule), not behind relaxed atomics.

  wall-clock-core       AST-level upgrade of hetsgd-lint's regex
                        wall-clock rule: catches aliased clock reads
                        (`using clk = std::chrono::steady_clock; clk::now()`)
                        and sleep calls in src/core/, which is
                        virtual-time-charged code.

Frontends: with the libclang Python bindings installed (CI), translation
units are parsed with clang over compile_commands.json and record layouts
come from the real AST; without them (the default container), a built-in
C++ lexer + scope tracker produces the same index with documented
reduced fidelity. `--frontend clang` mirrors check_all.sh gates 2/3:
SKIP (exit 0) when libclang is absent, a failure under --require-clang.

Waivers: a line (or up to two lines above it) containing
    // hetsgd-analyze: allow(<rule>) <justification>
suppresses that rule at that site. The justification is mandatory.

Exit status: 0 = clean/skip, 1 = findings or self-test failure,
2 = usage/config error.

Usage:
    tools/analyze/hetsgd_analyze.py [--root DIR] [--compile-commands PATH]
                                    [--frontend auto|clang|builtin]
                                    [--require-clang]
    tools/analyze/hetsgd_analyze.py --self-test
"""

from __future__ import annotations

import argparse
import glob as globmod
import json
import os
import re
import sys
from dataclasses import dataclass, field as dc_field

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl")
HEADER_EXTENSIONS = (".hpp", ".hh", ".h", ".inl")
SKIP_DIRS = {"CMakeFiles", "fixtures"}

WAIVER_RE = re.compile(r"//\s*hetsgd-analyze:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?$")
DISPATCH_ANNOT_RE = re.compile(
    r"//\s*hetsgd-analyze:\s*dispatch\s+ignores\(")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([a-z0-9-]+)")

# --- rule configuration -----------------------------------------------------

# ckpt-field-coverage: the root struct, its serializer pair, and the types
# whose members are serialized by their own envelope serializer and are
# therefore opaque to this rule (nn::Model has write_model/read_model with
# its own tests).
CKPT_ROOT_STRUCT = "TrainingCheckpoint"
CKPT_WRITE_FN = "write_training_checkpoint"
CKPT_READ_FN = "read_training_checkpoint"
CKPT_OPAQUE_TYPES = {"Model"}

# msg-exhaustive: the dispatched variant alias (discovered by name in the
# scanned tree so fixtures can define their own).
MSG_VARIANT_NAME = "Message"

# atomic-discipline: the sanctioned memory_order_relaxed sites, keyed by
# (root-relative path, atomic field name). This is the atomic counterpart
# of scripts/tsan.supp: queue/barrier internals whose ordering is carried
# by the surrounding acquire/release edges, and obs/log counters where a
# stale read only skews a statistic. The three sanctioned Hogwild races
# (tensor::axpy, nn::Model::operator=, the dataset shuffle helpers) are
# deliberately NOT here — they are plain non-atomic races suppressed in
# tsan.supp; turning them into relaxed atomics would hide them from TSan
# without making them more correct.
ALLOWED_RELAXED = {
    # spin barrier: arrival counter + sense flag; release/acquire on the
    # final arrival publishes, earlier relaxed ops are counting only.
    ("src/concurrent/spin_barrier.hpp", "sense_"),
    ("src/concurrent/spin_barrier.hpp", "arrived_"),
    # SPSC ring: own-side index loads (the owning thread wrote them last).
    ("src/concurrent/spsc_ring.hpp", "head_"),
    ("src/concurrent/spsc_ring.hpp", "tail_"),
    # MPSC queue: stub init before publication + consumer-side next load
    # (ordering carried by the producer's exchange/store pair).
    ("src/concurrent/mpsc_queue.hpp", "head_"),
    ("src/concurrent/mpsc_queue.hpp", "next"),
    # sharded counter / obs metrics: statistical counters; sum() is
    # documented as approximate under concurrent increments.
    ("src/concurrent/sharded_counter.hpp", "value"),
    ("src/obs/metrics.hpp", "v"),
    ("src/obs/metrics.hpp", "value_"),
    ("src/obs/metrics.cpp", "next"),
    ("src/obs/metrics.cpp", "counts_"),
    ("src/obs/metrics.cpp", "count_"),
    ("src/obs/metrics.cpp", "sum_"),
    # tracer: drop counters and the enabled fast-path flag (the slow path
    # re-checks under s.mu).
    ("src/obs/trace.cpp", "collected"),
    ("src/obs/trace.cpp", "enabled"),
    ("src/obs/trace.cpp", "dropped"),
    # exporter: running_ fast-path check (start/stop synchronize via the
    # thread join) and the snapshot statistic.
    ("src/obs/exporter.cpp", "running_"),
    ("src/obs/exporter.cpp", "snapshots_"),
    # --self-test vectors (root = tools/analyze/fixtures/<case>).
    ("src/obs/clean.cpp", "hits_"),
    ("src/core/clean.cpp", "ticks_"),
}

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "constexpr", "const_cast", "continue", "decltype",
    "default", "delete", "do", "double", "dynamic_cast", "else", "enum",
    "explicit", "extern", "false", "final", "float", "for", "friend", "goto",
    "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "override", "private", "protected", "public",
    "register", "reinterpret_cast", "return", "short", "signed", "sizeof",
    "static", "static_assert", "static_cast", "struct", "switch", "template",
    "this", "throw", "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while",
}

WALL_CLOCKS = {"steady_clock", "system_clock", "high_resolution_clock"}
ATOMIC_OPS = {
    "load", "store", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "exchange", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set", "clear", "wait", "notify_one", "notify_all",
}


# --- findings ---------------------------------------------------------------

@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def format(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# --- token stream (built-in frontend) ---------------------------------------

@dataclass
class Tok:
    kind: str  # "id", "num", "str", "chr", "p" (punct)
    text: str
    line: int


PUNCT3 = {"<<=", ">>=", "...", "->*"}
PUNCT2 = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++",
          "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*"}


def strip_directives(text: str) -> str:
    """Blanks preprocessor directives (incl. line continuations), keeping
    line numbers stable — macro bodies otherwise leak braces into the
    scope tracker."""
    out = []
    in_directive = False
    for line in text.split("\n"):
        starts = line.lstrip().startswith("#")
        if in_directive or starts:
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(line)
    return "\n".join(out)


def tokenize(text: str) -> list[Tok]:
    """C++ lexer: skips comments, keeps string/char literals as single
    tokens, tracks line numbers. Raw strings are not supported (none in
    the tree; hetsgd-lint would be the place to ban them)."""
    toks: list[Tok] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    break
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
        if c == '"' or c == "'":
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q:
                    break
                if text[j] == "\n":
                    break  # unterminated; tolerate
                j += 1
            toks.append(Tok("str" if q == '"' else "chr", text[i:j + 1], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        if text[i:i + 3] in PUNCT3:
            toks.append(Tok("p", text[i:i + 3], line))
            i += 3
            continue
        if text[i:i + 2] in PUNCT2:
            toks.append(Tok("p", text[i:i + 2], line))
            i += 2
            continue
        toks.append(Tok("p", c, line))
        i += 1
    return toks


# --- the index (facts shared by both frontends) ------------------------------

@dataclass
class FieldDef:
    name: str
    line: int
    type_ids: list[str]
    is_static: bool = False


@dataclass
class StructDef:
    name: str
    path: str
    line: int
    fields: list[FieldDef] = dc_field(default_factory=list)


@dataclass
class LockEvent:
    mutex_expr: str     # raw expression text
    line: int
    depth: int          # scope-stack depth at declaration
    held: list[str] = dc_field(default_factory=list)  # raw exprs held here


@dataclass
class CallEvent:
    name: str           # leaf callee name
    receiver: str | None  # leaf id before . / -> (None for plain calls)
    qualifier: str | None  # leaf id before :: (class-qualified calls)
    line: int
    held: list[str] = dc_field(default_factory=list)


@dataclass
class HoldsEvent:
    alt: str
    subject: str
    line: int


@dataclass
class VisitEvent:
    line: int
    arm_types: set[str]
    has_auto: bool


@dataclass
class FuncDef:
    name: str
    cls: str | None
    path: str
    line: int
    requires: list[str] = dc_field(default_factory=list)  # raw exprs
    locks: list[LockEvent] = dc_field(default_factory=list)
    calls: list[CallEvent] = dc_field(default_factory=list)
    members: set[str] = dc_field(default_factory=set)
    holds: list[HoldsEvent] = dc_field(default_factory=list)
    visits: list[VisitEvent] = dc_field(default_factory=list)


@dataclass
class AtomicSite:
    path: str
    line: int
    field: str
    op: str


@dataclass
class ChronoUse:
    path: str
    line: int
    what: str


@dataclass
class VariantDef:
    name: str
    path: str
    line: int
    alternatives: list[str]


@dataclass
class Index:
    structs: list[StructDef] = dc_field(default_factory=list)
    funcs: list[FuncDef] = dc_field(default_factory=list)
    atomics: list[AtomicSite] = dc_field(default_factory=list)
    chronos: list[ChronoUse] = dc_field(default_factory=list)
    variants: list[VariantDef] = dc_field(default_factory=list)
    # (class, method) -> raw REQUIRES arg exprs, from declarations.
    decl_requires: dict[tuple[str | None, str], list[str]] = \
        dc_field(default_factory=dict)
    # class -> {member: [type ids]} for receiver resolution.
    member_types: dict[str, dict[str, list[str]]] = \
        dc_field(default_factory=dict)
    files: list[str] = dc_field(default_factory=list)


# --- built-in frontend: scope-tracking extraction ----------------------------

@dataclass
class Scope:
    kind: str           # "ns" | "struct" | "enum" | "func" | "block"
    name: str | None = None
    func: FuncDef | None = None


class FileScanner:
    """One linear pass over a file's token stream, maintaining a scope
    stack, classifying every `{` from the statement head before it, and
    recording facts into the shared Index."""

    def __init__(self, index: Index, path: str):
        self.index = index
        self.path = path
        self.scopes: list[Scope] = []
        self.head: list[Tok] = []      # tokens since last ; { }
        self.active_locks: list[LockEvent] = []
        self.chrono_aliases: set[str] = set()

    # -- helpers --

    def cur_func(self) -> FuncDef | None:
        for s in reversed(self.scopes):
            if s.kind == "func":
                return s.func
            if s.kind in ("ns",):
                return None
        return None

    def cur_struct(self) -> str | None:
        for s in reversed(self.scopes):
            if s.kind == "struct":
                return s.name
            if s.kind == "func":
                return None
        return None

    def enclosing_struct_for_head(self) -> str | None:
        for s in reversed(self.scopes):
            if s.kind == "struct":
                return s.name
        return None

    # -- head classification on `{` --

    def classify_open(self, toks: list[Tok]) -> Scope:
        head = self.head
        ids = [t.text for t in head if t.kind == "id"]
        in_func = self.cur_func() is not None
        if not in_func:
            if "namespace" in ids:
                return Scope("ns", ids[-1] if len(ids) > 1 else None)
            if "enum" in ids:
                return Scope("enum")
            if ("struct" in ids or "class" in ids or "union" in ids) \
                    and self._looks_like_record(head):
                return Scope("struct", self._record_name(head))
            fn = self._function_head(head)
            if fn is not None:
                return Scope("func", func=fn)
            return Scope("block")
        # Inside a function every `{` is a block (if/for/lambda/init).
        return Scope("block")

    def _looks_like_record(self, head: list[Tok]) -> bool:
        # `struct X {` / `class Y : base {` — but NOT a function whose
        # return type mentions a struct, which would have a param list.
        # Records may still have parens from capability annotations
        # (HETSGD_CAPABILITY("mutex")); those sit between the keyword and
        # the name, so require: no `(` after the last identifier.
        last_id = None
        for i, t in enumerate(head):
            if t.kind == "id" and t.text not in ("final",):
                last_id = i
        if last_id is None:
            return False
        return not any(t.text == "(" for t in head[last_id:])

    def _record_name(self, head: list[Tok]) -> str | None:
        # Name = last identifier before a base-clause `:` (skipping
        # `final`), else the last identifier.
        cut = len(head)
        depth = 0
        for i, t in enumerate(head):
            if t.text in ("<", "("):
                depth += 1
            elif t.text in (">", ")"):
                depth -= 1
            elif t.text == ":" and depth == 0:
                cut = i
                break
        ids = [t.text for t in head[:cut]
               if t.kind == "id" and t.text not in ("final", "struct", "class",
                                                    "union", "template",
                                                    "typename", "alignas")]
        return ids[-1] if ids else None

    def _function_head(self, head: list[Tok]) -> FuncDef | None:
        # A function definition head has a top-level parenthesized
        # parameter list whose opening `(` is preceded by the function
        # name (or an operator token run).
        depth = 0
        name_i = None
        for i, t in enumerate(head):
            if t.text == "(" :
                if depth == 0 and i > 0 and name_i is None:
                    prev = head[i - 1]
                    if prev.kind == "id" and prev.text not in KEYWORDS:
                        name_i = i - 1
                    elif prev.kind == "p" and any(
                            h.text == "operator" for h in head[max(0, i - 3):i]):
                        name_i = i - 1
                depth += 1
            elif t.text == ")":
                depth -= 1
        if name_i is None:
            return None
        name = head[name_i].text
        if head[name_i].kind == "p":
            name = "operator" + name
        cls = None
        if name_i >= 2 and head[name_i - 1].text == "::" \
                and head[name_i - 2].kind == "id":
            cls = head[name_i - 2].text
        elif self.enclosing_struct_for_head() is not None:
            cls = self.enclosing_struct_for_head()
        fn = FuncDef(name=name, cls=cls, path=self.path,
                     line=head[name_i].line)
        fn.requires = self._annotation_args(head, "HETSGD_REQUIRES")
        return fn

    def _annotation_args(self, toks: list[Tok], macro: str) -> list[str]:
        args: list[str] = []
        i = 0
        while i < len(toks):
            if toks[i].kind == "id" and toks[i].text == macro \
                    and i + 1 < len(toks) and toks[i + 1].text == "(":
                depth = 0
                j = i + 1
                cur: list[str] = []
                while j < len(toks):
                    t = toks[j].text
                    if t == "(":
                        depth += 1
                        if depth == 1:
                            j += 1
                            continue
                    elif t == ")":
                        depth -= 1
                        if depth == 0:
                            if cur:
                                args.append("".join(cur))
                            break
                    elif t == "," and depth == 1:
                        if cur:
                            args.append("".join(cur))
                        cur = []
                        j += 1
                        continue
                    if depth >= 1:
                        cur.append(t)
                    j += 1
                i = j
            i += 1
        return args

    # -- statement handling --

    def end_statement(self) -> None:
        head = self.head
        self.head = []
        if not head:
            return
        if self.cur_func() is not None:
            return  # body statements are handled token-by-token
        struct = self.cur_struct()
        texts = [t.text for t in head]
        if struct is not None and self.scopes and \
                self.scopes[-1].kind == "struct":
            self._struct_statement(struct, head, texts)
        self._using_statement(head, texts)

    def _struct_statement(self, struct: str, head: list[Tok],
                          texts: list[str]) -> None:
        # Method declaration carrying HETSGD_REQUIRES -> remember for the
        # out-of-line definition.
        req = self._annotation_args(head, "HETSGD_REQUIRES")
        head = self._strip_annotation_macros(head)
        texts = [t.text for t in head]
        if req and "(" in texts:
            fn = self._function_head(head)
            if fn is not None:
                self.index.decl_requires[(struct, fn.name)] = req
            return
        if texts and texts[0] in ("public", "private", "protected"):
            return
        if texts and texts[0] in ("using", "typedef", "friend", "template",
                                  "enum", "static_assert"):
            return
        is_static = "static" in texts
        # Field: no parens before the initializer.
        stop = len(head)
        for i, t in enumerate(head):
            if t.text in ("=", "{", "["):
                stop = i
                break
        if any(t.text == "(" for t in head[:stop]):
            return  # method / constructor declaration
        decl = head[:stop]
        name_tok = None
        for t in reversed(decl):
            if t.kind == "id" and t.text not in KEYWORDS:
                name_tok = t
                break
        if name_tok is None:
            return
        type_ids = [t.text for t in decl
                    if t.kind == "id" and t is not name_tok
                    and t.text not in KEYWORDS]
        sd = self._struct_def(struct)
        if sd is not None:
            sd.fields.append(FieldDef(name_tok.text, name_tok.line, type_ids,
                                      is_static))
            self.index.member_types.setdefault(struct, {})[name_tok.text] = \
                type_ids

    def _strip_annotation_macros(self, head: list[Tok]) -> list[Tok]:
        """Drops HETSGD_*(...) attribute macros (GUARDED_BY, REQUIRES, ...)
        so an annotated field is not mistaken for a method declaration."""
        out: list[Tok] = []
        i = 0
        while i < len(head):
            t = head[i]
            if t.kind == "id" and t.text.startswith("HETSGD_") \
                    and i + 1 < len(head) and head[i + 1].text == "(":
                depth = 0
                j = i + 1
                while j < len(head):
                    if head[j].text == "(":
                        depth += 1
                    elif head[j].text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                i = j + 1
                continue
            if t.kind == "id" and t.text.startswith("HETSGD_"):
                i += 1  # parameterless attribute macro
                continue
            out.append(t)
            i += 1
        return out

    def _struct_def(self, name: str) -> StructDef | None:
        for sd in reversed(self.index.structs):
            if sd.name == name and sd.path == self.path:
                return sd
        return None

    def _using_statement(self, head: list[Tok], texts: list[str]) -> None:
        if len(texts) < 3 or texts[0] != "using" or texts[2] != "=":
            return
        name = texts[1]
        if "variant" in texts:
            alts = self._variant_alternatives(head)
            if alts:
                self.index.variants.append(
                    VariantDef(name, self.path, head[0].line, alts))
        if any(t in WALL_CLOCKS for t in texts):
            self.chrono_aliases.add(name)

    def _variant_alternatives(self, head: list[Tok]) -> list[str]:
        # ids at angle-depth 1 inside the variant<...> list; the last id of
        # each comma-separated part is the alternative's leaf name.
        try:
            vi = next(i for i, t in enumerate(head) if t.text == "variant")
        except StopIteration:
            return []
        depth = 0
        alts: list[str] = []
        last_id: str | None = None
        for t in head[vi:]:
            if t.text == "<":
                depth += 1
                continue
            if t.text == ">":
                depth -= 1
                if depth == 0:
                    if last_id:
                        alts.append(last_id)
                    break
                continue
            if depth == 1 and t.text == ",":
                if last_id:
                    alts.append(last_id)
                last_id = None
            elif depth == 1 and t.kind == "id" and t.text not in KEYWORDS:
                last_id = t.text
        return alts

    # -- main loop --

    def scan(self, toks: list[Tok]) -> None:
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text == "{":
                scope = self.classify_open(toks)
                if scope.kind == "block" and self.head \
                        and self.cur_func() is None:
                    # Aggregate / brace initializer at namespace or struct
                    # scope (`uint64_t s[4] = {0,0,0,0};`): part of the
                    # statement, not a new scope — consume to the matching
                    # brace and keep accumulating the declaration.
                    depth = 0
                    j = i
                    while j < n:
                        if toks[j].text == "{":
                            depth += 1
                        elif toks[j].text == "}":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    self.head.append(t)  # field-name stop marker
                    i = j + 1
                    continue
                if scope.kind == "struct" and scope.name:
                    self.index.structs.append(
                        StructDef(scope.name, self.path,
                                  self.head[0].line if self.head else t.line))
                if scope.kind == "func" and scope.func is not None:
                    self.index.funcs.append(scope.func)
                self.scopes.append(scope)
                self.head = []
                i += 1
                continue
            if t.text == "}":
                if self.scopes:
                    self.scopes.pop()
                depth = len(self.scopes)
                self.active_locks = [e for e in self.active_locks
                                     if e.depth <= depth]
                self.head = []
                i += 1
                # `};` terminators etc. reset via head
                continue
            if t.text == ";":
                self.end_statement()
                i += 1
                continue

            fn = self.cur_func()
            if fn is not None:
                i = self._body_token(fn, toks, i)
            else:
                self.head.append(t)
                i += 1
        # EOF: flush
        self.end_statement()

    # -- body facts --

    def _body_token(self, fn: FuncDef, toks: list[Tok], i: int) -> int:
        t = toks[i]
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        nx2 = toks[i + 2] if i + 2 < len(toks) else None
        prev = toks[i - 1] if i > 0 else None

        # MutexLock <var> ( <expr> )
        if t.kind == "id" and t.text == "MutexLock" and nxt is not None \
                and nxt.kind == "id" and nx2 is not None and nx2.text == "(":
            j, expr = self._paren_expr(toks, i + 2)
            ev = LockEvent(expr, t.line, len(self.scopes),
                           held=[e.mutex_expr for e in self.active_locks])
            fn.locks.append(ev)
            self.active_locks.append(ev)
            return j

        # member access
        if t.text in (".", "->") and nxt is not None and nxt.kind == "id":
            fn.members.add(nxt.text)

        # holds_alternative< T >( subj )
        if t.kind == "id" and t.text == "holds_alternative" \
                and nxt is not None and nxt.text == "<":
            j = i + 1
            depth = 0
            type_ids: list[str] = []
            while j < len(toks):
                tt = toks[j].text
                if tt == "<":
                    depth += 1
                elif tt == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].kind == "id" and toks[j].text not in KEYWORDS:
                    type_ids.append(toks[j].text)
                j += 1
            if j + 1 < len(toks) and toks[j + 1].text == "(" and type_ids:
                k, subj = self._paren_expr(toks, j + 1)
                fn.holds.append(HoldsEvent(type_ids[-1], subj, t.line))
                return k

        # std::visit(...)
        if t.kind == "id" and t.text == "visit" and nxt is not None \
                and nxt.text == "(":
            j, expr_toks = self._paren_tokens(toks, i + 1)
            arm_ids = {tt.text for tt in expr_toks if tt.kind == "id"}
            has_auto = any(tt.text == "auto" for tt in expr_toks)
            fn.visits.append(VisitEvent(t.line, arm_ids, has_auto))
            # still scan inside for nested facts: do NOT skip
            return i + 1

        # memory_order_relaxed
        if t.kind == "id" and t.text in ("memory_order_relaxed", "relaxed") \
                and (t.text == "memory_order_relaxed"
                     or (prev is not None and prev.text == "::" and i >= 2
                         and toks[i - 2].text == "memory_order")):
            site = self._atomic_receiver(toks, i)
            if site is not None:
                self.index.atomics.append(site)

        # wall-clock constructs
        if t.kind == "id" and (t.text in WALL_CLOCKS
                               or t.text in self.chrono_aliases) \
                and nxt is not None and nxt.text == "::" \
                and nx2 is not None and nx2.text == "now":
            self.index.chronos.append(
                ChronoUse(self.path, t.line, f"{t.text}::now"))
        if t.kind == "id" and t.text in ("sleep_for", "sleep_until") \
                and nxt is not None and nxt.text == "(":
            self.index.chronos.append(ChronoUse(self.path, t.line, t.text))
        if t.kind == "id" and t.text == "time" and nxt is not None \
                and nxt.text == "(" and nx2 is not None \
                and nx2.text in ("NULL", "nullptr", "0", "&") \
                and (prev is None or prev.text not in (".", "->", "::")):
            self.index.chronos.append(ChronoUse(self.path, t.line, "time()"))

        # call expression
        if t.kind == "id" and t.text not in KEYWORDS and nxt is not None \
                and nxt.text == "(":
            if not self._is_declaration_or_special(toks, i):
                receiver, qualifier = self._call_context(toks, i)
                if qualifier not in ("std", "chrono", "filesystem", "fs"):
                    fn.calls.append(CallEvent(
                        t.text, receiver, qualifier, t.line,
                        held=[e.mutex_expr for e in self.active_locks]))

        # local chrono alias inside a function body: `using clk = ...;`
        if t.kind == "id" and t.text == "using" and nxt is not None \
                and nxt.kind == "id" and nx2 is not None and nx2.text == "=":
            j = i
            seen: list[str] = []
            while j < len(toks) and toks[j].text != ";":
                if toks[j].kind == "id":
                    seen.append(toks[j].text)
                j += 1
            if any(s in WALL_CLOCKS for s in seen):
                self.chrono_aliases.add(nxt.text)

        return i + 1

    def _paren_expr(self, toks: list[Tok], open_i: int) -> tuple[int, str]:
        j, inner = self._paren_tokens(toks, open_i)
        return j, "".join(t.text for t in inner)

    def _paren_tokens(self, toks: list[Tok],
                      open_i: int) -> tuple[int, list[Tok]]:
        depth = 0
        inner: list[Tok] = []
        j = open_i
        while j < len(toks):
            tt = toks[j].text
            if tt == "(":
                depth += 1
                if depth == 1:
                    j += 1
                    continue
            elif tt == ")":
                depth -= 1
                if depth == 0:
                    return j + 1, inner
            if depth >= 1:
                inner.append(toks[j])
            j += 1
        return j, inner

    def _is_declaration_or_special(self, toks: list[Tok], i: int) -> bool:
        prev = toks[i - 1] if i > 0 else None
        if prev is None:
            return False
        if prev.kind == "id" and prev.text not in KEYWORDS:
            return True   # `Type name(args)` declaration
        if prev.kind == "id" and prev.text in ("new", "return", "case",
                                               "throw"):
            return prev.text == "new"
        if prev.text in (">", "*", "&") and i >= 2:
            # `std::vector<T> name(...)` / `Type* name(...)`: declaration
            # only when the token before the punctuation belongs to a type
            # expression; approximate by "previous-previous is id or >".
            pp = toks[i - 2]
            if prev.text == ">" :
                return False  # template call like foo<T>(...) is rare here
            return pp.kind == "id" or pp.text == ">"
        return False

    def _call_context(self, toks: list[Tok],
                      i: int) -> tuple[str | None, str | None]:
        prev = toks[i - 1] if i > 0 else None
        if prev is None:
            return None, None
        if prev.text in (".", "->"):
            j = i - 2
            # walk back over balanced ] or ) to the owning identifier
            while j >= 0 and toks[j].text in ("]", ")"):
                close = toks[j].text
                opener = "[" if close == "]" else "("
                depth = 0
                while j >= 0:
                    if toks[j].text == close:
                        depth += 1
                    elif toks[j].text == opener:
                        depth -= 1
                        if depth == 0:
                            j -= 1
                            break
                    j -= 1
            if j >= 0 and toks[j].kind == "id":
                return toks[j].text, None
            return None, None
        if prev.text == "::" and i >= 2 and toks[i - 2].kind == "id":
            return None, toks[i - 2].text
        return None, None


# --- frontends ---------------------------------------------------------------

def iter_source_files(root: str, compile_commands: str | None,
                      subdirs: tuple[str, ...] = ("src",)) -> list[str]:
    tu_allow: set[str] | None = None
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands, encoding="utf-8") as f:
                entries = json.load(f)
            tu_allow = set()
            for e in entries:
                p = e.get("file", "")
                if not os.path.isabs(p):
                    p = os.path.join(e.get("directory", root), p)
                tu_allow.add(os.path.realpath(p))
        except (json.JSONDecodeError, OSError) as err:
            print(f"hetsgd-analyze: bad compile_commands "
                  f"{compile_commands}: {err}", file=sys.stderr)
            sys.exit(2)
    files: list[str] = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith(".")
                                 and d not in SKIP_DIRS)
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.realpath(os.path.join(dirpath, name))
                if (tu_allow is not None
                        and not name.endswith(HEADER_EXTENSIONS)
                        and path not in tu_allow):
                    continue
                files.append(path)
    return files


def builtin_scan(root: str, files: list[str]) -> Index:
    index = Index()
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            print(f"hetsgd-analyze: cannot read {path}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        toks = tokenize(strip_directives(text))
        FileScanner(index, path).scan(toks)
        index.files.append(path)
    return index


# -- libclang frontend --------------------------------------------------------

def find_libclang() -> "object | None":
    """Returns the clang.cindex module with a usable library, or None."""
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None
    candidates = [os.environ.get("HETSGD_LIBCLANG", "")]
    candidates += sorted(globmod.glob("/usr/lib/llvm-*/lib/libclang-*.so*"),
                         reverse=True)
    candidates += sorted(globmod.glob("/usr/lib/llvm-*/lib/libclang.so*"),
                         reverse=True)
    candidates += sorted(
        globmod.glob("/usr/lib/x86_64-linux-gnu/libclang-*.so*"),
        reverse=True)
    for cand in [c for c in candidates if c]:
        try:
            cindex.Config.library_file = None
            cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001 - any loader failure means "next"
            # Config caches state; reset so the next candidate can try.
            cindex.Config.loaded = False
            continue
    try:
        cindex.Config.loaded = False
        cindex.Config.library_file = None
        cindex.Index.create()
        return cindex
    except Exception:  # noqa: BLE001
        return None


def clang_scan(root: str, files: list[str],
               compile_commands: str | None, cindex) -> Index:
    """libclang frontend: the syntactic engine is shared with the builtin
    frontend (same token-level extraction, identical findings contract);
    libclang additionally parses every translation unit listed in
    compile_commands.json and replaces the heuristic record layouts with
    FIELD_DECLs from the real AST — so field coverage tracks exactly what
    the compiler sees (macro-expanded, preprocessor-resolved)."""
    index = builtin_scan(root, files)
    try:
        _clang_refine_structs(root, files, compile_commands, cindex, index)
    except Exception as err:  # noqa: BLE001 - degrade, don't die
        print(f"hetsgd-analyze: libclang refinement failed ({err}); "
              f"keeping builtin record layouts", file=sys.stderr)
    return index


def _clang_refine_structs(root, files, compile_commands, cindex, index):
    args_by_file: dict[str, list[str]] = {}
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, encoding="utf-8") as f:
            for e in json.load(f):
                p = e.get("file", "")
                if not os.path.isabs(p):
                    p = os.path.join(e.get("directory", root), p)
                raw = e.get("arguments") or e.get("command", "").split()
                argv = [a for a in raw[1:]
                        if a not in ("-c", "-o") and not a.endswith(".o")
                        and os.path.realpath(a) != os.path.realpath(p)]
                args_by_file[os.path.realpath(p)] = argv
    fileset = set(files)
    tus = [f for f in files if not f.endswith(HEADER_EXTENSIONS)]
    if not tus:
        tus = files[:]  # fixture trees: parse headers standalone
    idx = cindex.Index.create()
    seen_structs: dict[tuple[str, int], StructDef] = {}
    parsed_files: set[str] = set()
    for tu_path in tus:
        argv = args_by_file.get(tu_path,
                                ["-std=c++17", f"-I{os.path.join(root, 'src')}"])
        try:
            tu = idx.parse(tu_path, args=argv)
        except Exception:  # noqa: BLE001
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (cindex.CursorKind.STRUCT_DECL,
                                cindex.CursorKind.CLASS_DECL):
                continue
            if not cur.is_definition() or cur.location.file is None:
                continue
            cpath = os.path.realpath(cur.location.file.name)
            if cpath not in fileset:
                continue
            key = (cpath, cur.location.line)
            if key in seen_structs:
                continue
            sd = StructDef(cur.spelling, cpath, cur.location.line)
            for ch in cur.get_children():
                if ch.kind != cindex.CursorKind.FIELD_DECL:
                    continue
                type_ids = re.findall(r"[A-Za-z_]\w*", ch.type.spelling)
                sd.fields.append(FieldDef(ch.spelling, ch.location.line,
                                          [t for t in type_ids
                                           if t not in KEYWORDS]))
                index.member_types.setdefault(cur.spelling, {})[ch.spelling] \
                    = sd.fields[-1].type_ids
            seen_structs[key] = sd
            parsed_files.add(cpath)
    if seen_structs:
        index.structs = [s for s in index.structs
                         if s.path not in parsed_files] \
            + list(seen_structs.values())


# --- waivers -----------------------------------------------------------------

class WaiverTable:
    def __init__(self):
        self._lines: dict[str, list[str]] = {}

    def _file_lines(self, path: str) -> list[str]:
        if path not in self._lines:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._lines[path] = f.read().splitlines()
            except OSError:
                self._lines[path] = []
        return self._lines[path]

    def waived(self, path: str, line: int, rule: str) -> bool:
        """A waiver applies on the flagged line itself or anywhere in the
        contiguous comment block directly above it (waivers for several
        tools commonly stack there)."""
        lines = self._file_lines(path)
        idx = line - 1
        if 0 <= idx < len(lines):
            m = WAIVER_RE.search(lines[idx])
            if m and m.group(1) == rule and m.group(2):
                return True
        probe = idx - 1
        while probe >= 0 and probe >= idx - 6 \
                and lines[probe].strip().startswith("//"):
            m = WAIVER_RE.search(lines[probe])
            if m and m.group(1) == rule and m.group(2):
                return True
            probe -= 1
        return False

    def dispatch_ignores(self, path: str, line: int) -> set[str] | None:
        """Finds a `// hetsgd-analyze: dispatch ignores(A, B, ...)` within
        the six lines above (or on) the dispatch anchor. The list may wrap
        across consecutive `//` comment lines."""
        lines = self._file_lines(path)
        idx = line - 1
        for probe in range(idx, max(-1, idx - 7), -1):
            if probe >= len(lines):
                continue
            m = DISPATCH_ANNOT_RE.search(lines[probe])
            if not m:
                continue
            buf = lines[probe][m.end():]
            j = probe + 1
            while ")" not in buf and j < len(lines) \
                    and lines[j].lstrip().startswith("//"):
                buf += " " + lines[j].lstrip().lstrip("/")
                j += 1
            buf = buf.split(")", 1)[0]
            return {s.strip() for s in buf.split(",") if s.strip()}
        return None


# --- rule 1: ckpt-field-coverage ---------------------------------------------

def rule_ckpt_field_coverage(root: str, index: Index, waivers: WaiverTable,
                             findings: list[Finding]) -> None:
    by_name: dict[str, StructDef] = {}
    for sd in index.structs:
        by_name.setdefault(sd.name, sd)
    roots = [sd for sd in index.structs if sd.name == CKPT_ROOT_STRUCT]
    if not roots:
        return
    root_sd = roots[0]

    def closure(start: str) -> tuple[set[str], bool]:
        """Member names referenced by `start` plus same-file helpers it
        calls, transitively. Returns (members, found_start)."""
        starts = [f for f in index.funcs if f.name == start]
        if not starts:
            return set(), False
        home = starts[0].path
        by_leaf: dict[str, list[FuncDef]] = {}
        for f in index.funcs:
            if f.path == home:
                by_leaf.setdefault(f.name, []).append(f)
        members: set[str] = set()
        seen: set[int] = set()
        work = list(starts)
        while work:
            f = work.pop()
            if id(f) in seen:
                continue
            seen.add(id(f))
            members |= f.members
            for call in f.calls:
                for g in by_leaf.get(call.name, []):
                    if id(g) not in seen:
                        work.append(g)
        return members, True

    write_members, has_w = closure(CKPT_WRITE_FN)
    read_members, has_r = closure(CKPT_READ_FN)
    if not has_w or not has_r:
        missing = CKPT_WRITE_FN if not has_w else CKPT_READ_FN
        findings.append(Finding(
            "ckpt-field-coverage", root_sd.path, root_sd.line,
            f"struct {CKPT_ROOT_STRUCT} found but its serializer "
            f"{missing}() is not — the coverage contract cannot be checked"))
        return

    # BFS over embedded struct types.
    tracked: list[StructDef] = []
    seen_names: set[str] = set()
    work = [root_sd]
    while work:
        sd = work.pop()
        if sd.name in seen_names:
            continue
        seen_names.add(sd.name)
        tracked.append(sd)
        for fld in sd.fields:
            for tid in fld.type_ids:
                if tid in CKPT_OPAQUE_TYPES or tid in seen_names:
                    continue
                if tid in by_name:
                    work.append(by_name[tid])

    for sd in tracked:
        for fld in sd.fields:
            if fld.is_static:
                continue
            missing = []
            if fld.name not in write_members:
                missing.append(CKPT_WRITE_FN)
            if fld.name not in read_members:
                missing.append(CKPT_READ_FN)
            if not missing:
                continue
            if waivers.waived(sd.path, fld.line, "ckpt-field-coverage"):
                continue
            findings.append(Finding(
                "ckpt-field-coverage", sd.path, fld.line,
                f"{sd.name}::{fld.name} is not referenced in "
                f"{' or '.join(missing)} — a checkpoint cut would silently "
                f"drop it; serialize the field (or waive it with a reason "
                f"if it is deliberately not persisted)"))


# --- rule 2: lock-order ------------------------------------------------------

def _canon_mutex(expr: str, cls: str | None, index: Index) -> str:
    e = expr.replace("this->", "")
    if re.fullmatch(r"[A-Za-z_]\w*", e):
        if cls:
            return f"{cls}::{e}"
        owners = [c for c, members in index.member_types.items()
                  if e in members and any(
                      "AnnotatedMutex" in t or "mutex" == t
                      for t in members[e])]
        if len(owners) == 1:
            return f"{owners[0]}::{e}"
        return e
    leaf_m = re.search(r"(?:\.|->)([A-Za-z_]\w*)$", e)
    if leaf_m:
        leaf = leaf_m.group(1)
        owners = [c for c, members in index.member_types.items()
                  if leaf in members and any(
                      "AnnotatedMutex" in t for t in members[leaf])]
        if len(owners) == 1:
            return f"{owners[0]}::{leaf}"
    return e  # distinct per expression text: may miss aliasing, never invents


def _resolve_call(call: CallEvent, caller: FuncDef,
                  index: Index, by_leaf: dict[str, list[FuncDef]],
                  ) -> list[FuncDef]:
    cands = by_leaf.get(call.name, [])
    if not cands:
        return []
    if call.receiver is not None:
        # Type the receiver through the member-type table.
        rtypes: set[str] = set()
        search_classes = ([caller.cls] if caller.cls else []) \
            + [c for c in index.member_types if c != caller.cls]
        for c in search_classes:
            members = index.member_types.get(c, {})
            if call.receiver in members:
                rtypes = {t for t in members[call.receiver]}
                break
        if rtypes:
            # Receiver's declared type is known: only accept candidates on
            # that type. No match means the callee is an external type's
            # method (std::deque::empty, ...) — resolving it by leaf name
            # would invent edges, so resolve to nothing.
            return [f for f in cands if f.cls in rtypes]
        return cands
    if call.qualifier is not None:
        q = [f for f in cands if f.cls == call.qualifier]
        return q if q else cands
    if caller.cls is not None:
        same = [f for f in cands if f.cls == caller.cls]
        if same:
            return same
    # Plain call: prefer same-file free functions.
    same_file = [f for f in cands if f.path == caller.path and f.cls is None]
    return same_file if same_file else cands


def rule_lock_order(root: str, index: Index, waivers: WaiverTable,
                    findings: list[Finding]) -> None:
    by_leaf: dict[str, list[FuncDef]] = {}
    for f in index.funcs:
        by_leaf.setdefault(f.name, []).append(f)

    canon_cache: dict[tuple[str, str | None], str] = {}

    def canon(expr: str, cls: str | None) -> str:
        key = (expr, cls)
        if key not in canon_cache:
            canon_cache[key] = _canon_mutex(expr, cls, index)
        return canon_cache[key]

    # may_acquire fixpoint over the call graph.
    may: dict[int, set[str]] = {
        id(f): {canon(e.mutex_expr, f.cls) for e in f.locks}
        for f in index.funcs}
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for f in index.funcs:
            acc = may[id(f)]
            before = len(acc)
            for call in f.calls:
                for g in _resolve_call(call, f, index, by_leaf):
                    acc |= may[id(g)]
            if len(acc) != before:
                changed = True

    # Edges: held -> acquired, with a witness site.
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}

    def add_edge(a: str, b: str, path: str, line: int, why: str) -> None:
        if a == b:
            return  # re-acquisition is clang -Wthread-safety's job
        edges.setdefault((a, b), (path, line, why))

    for f in index.funcs:
        req = [canon(e, f.cls) for e in f.requires]
        if not req:
            dr = index.decl_requires.get((f.cls, f.name))
            if dr:
                req = [canon(e, f.cls) for e in dr]
        for ev in f.locks:
            held = [canon(h, f.cls) for h in ev.held] + req
            for h in held:
                add_edge(h, canon(ev.mutex_expr, f.cls), f.path, ev.line,
                         f"MutexLock in {f.name}")
        for call in f.calls:
            held = [canon(h, f.cls) for h in call.held] + req
            if not held:
                continue
            for g in _resolve_call(call, f, index, by_leaf):
                for m in may[id(g)]:
                    for h in held:
                        add_edge(h, m, f.path, call.line,
                                 f"{f.name} calls {call.name}() which may "
                                 f"acquire it")

    # Cycle detection: iterative DFS over the edge graph.
    graph: dict[str, list[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])

    color: dict[str, int] = {}
    stack_path: list[str] = []
    cycles: list[list[str]] = []

    def dfs(u: str) -> None:
        color[u] = 1
        stack_path.append(u)
        for v in graph.get(u, []):
            if color.get(v, 0) == 0:
                dfs(v)
            elif color.get(v) == 1:
                ci = stack_path.index(v)
                cycles.append(stack_path[ci:] + [v])
        stack_path.pop()
        color[u] = 2

    sys.setrecursionlimit(10000)
    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node)

    reported: set[frozenset[str]] = set()
    for cyc in cycles:
        key = frozenset(cyc)
        if key in reported:
            continue
        reported.add(key)
        sites = []
        for a, b in zip(cyc, cyc[1:]):
            path, line, why = edges[(a, b)]
            sites.append((path, line, a, b, why))
        path, line, _a, _b, _w = min(
            sites, key=lambda s: (os.path.relpath(s[0], root), s[1]))
        if any(waivers.waived(p, ln, "lock-order") for p, ln, *_ in sites):
            continue
        desc = " ; ".join(
            f"{a} -> {b} ({os.path.relpath(p, root)}:{ln}: {w})"
            for p, ln, a, b, w in sites)
        findings.append(Finding(
            "lock-order", path, line,
            f"lock-acquisition cycle (potential deadlock): {desc}"))


# --- rule 3: msg-exhaustive --------------------------------------------------

def rule_msg_exhaustive(root: str, index: Index, waivers: WaiverTable,
                        findings: list[Finding]) -> None:
    variants = [v for v in index.variants if v.name == MSG_VARIANT_NAME]
    if not variants:
        return
    alts = set(variants[0].alternatives)
    src_prefix = os.path.join(root, "src") + os.sep

    for f in index.funcs:
        if not f.path.startswith(src_prefix):
            continue
        # holds_alternative chains grouped by subject expression.
        groups: dict[str, list[HoldsEvent]] = {}
        for ev in f.holds:
            if ev.alt in alts:
                groups.setdefault(ev.subject, []).append(ev)
        for subject, events in sorted(groups.items()):
            if len(events) < 2:
                continue  # a single membership test is not a dispatcher
            anchor = min(ev.line for ev in events)
            handled = {ev.alt for ev in events}
            _check_dispatch(root, f, anchor, handled, alts, subject,
                            waivers, findings)
        for v in f.visits:
            handled = v.arm_types & alts
            if not handled:
                continue  # not a Message dispatch we can attribute
            if v.has_auto:
                # A generic arm absorbs everything silently; unaccounted
                # alternatives must still be declared in ignores().
                pass
            _check_dispatch(root, f, v.line, handled, alts,
                            "std::visit", waivers, findings)


def _check_dispatch(root: str, f: FuncDef, anchor: int, handled: set[str],
                    alts: set[str], subject: str, waivers: WaiverTable,
                    findings: list[Finding]) -> None:
    ignores = waivers.dispatch_ignores(f.path, anchor) or set()
    bogus = ignores - alts
    if bogus:
        findings.append(Finding(
            "msg-exhaustive", f.path, anchor,
            f"dispatch ignores() names non-alternatives "
            f"{sorted(bogus)} — stale annotation (message kind renamed "
            f"or removed?)"))
    overlap = ignores & handled
    if overlap:
        findings.append(Finding(
            "msg-exhaustive", f.path, anchor,
            f"dispatch ignores() lists {sorted(overlap)} which the "
            f"dispatch also handles — drop them from the annotation"))
    missing = alts - handled - ignores
    if missing:
        if waivers.waived(f.path, anchor, "msg-exhaustive"):
            return
        findings.append(Finding(
            "msg-exhaustive", f.path, anchor,
            f"dispatch over {subject} in {f.name}() does not account for "
            f"{sorted(missing)} — handle them or declare them in a "
            f"'// hetsgd-analyze: dispatch ignores(...)' annotation above "
            f"the dispatch"))


# --- rule 4: atomic-discipline -----------------------------------------------

def rule_atomic_discipline(root: str, index: Index, waivers: WaiverTable,
                           findings: list[Finding]) -> None:
    for site in index.atomics:
        rel = os.path.relpath(site.path, root)
        if (rel, site.field) in ALLOWED_RELAXED:
            continue
        if waivers.waived(site.path, site.line, "atomic-discipline"):
            continue
        findings.append(Finding(
            "atomic-discipline", site.path, site.line,
            f"memory_order_relaxed {site.op}() on '{site.field}' is not an "
            f"allowlisted benign site — use acquire/release (free on "
            f"x86-64) or add the field to ALLOWED_RELAXED in "
            f"tools/analyze/hetsgd_analyze.py with a justification; "
            f"benign non-atomic races belong in scripts/tsan.supp"))


def _atomic_receiver_site(path, toks, i):  # kept for symmetry; unused
    return None


# (receiver extraction lives on FileScanner so it sees the token stream)
def _scanner_atomic_receiver(self: FileScanner, toks: list[Tok],
                             i: int) -> AtomicSite | None:
    # Walk back to the `(` that opened the current call argument list,
    # then read `<receiver> . <op> (`.
    depth = 0
    j = i
    while j >= 0:
        tt = toks[j].text
        if tt == ")":
            depth += 1
        elif tt == "(":
            if depth == 0:
                break
            depth -= 1
        j -= 1
    if j <= 0:
        return None
    op_tok = toks[j - 1]
    if op_tok.kind != "id" or op_tok.text not in ATOMIC_OPS:
        return None
    if j - 2 < 0 or toks[j - 2].text not in (".", "->"):
        return None
    k = j - 3
    while k >= 0 and toks[k].text in ("]", ")"):
        close = toks[k].text
        opener = "[" if close == "]" else "("
        d = 0
        while k >= 0:
            if toks[k].text == close:
                d += 1
            elif toks[k].text == opener:
                d -= 1
                if d == 0:
                    k -= 1
                    break
            k -= 1
    if k < 0 or toks[k].kind != "id":
        return None
    return AtomicSite(self.path, op_tok.line, toks[k].text, op_tok.text)


FileScanner._atomic_receiver = _scanner_atomic_receiver  # type: ignore


# --- rule 5: wall-clock-core -------------------------------------------------

def rule_wall_clock_core(root: str, index: Index, waivers: WaiverTable,
                         findings: list[Finding]) -> None:
    core_prefix = os.path.join(root, "src", "core") + os.sep
    for use in index.chronos:
        if not use.path.startswith(core_prefix):
            continue
        if waivers.waived(use.path, use.line, "wall-clock-core"):
            continue
        findings.append(Finding(
            "wall-clock-core", use.path, use.line,
            f"wall-clock construct {use.what} in src/core/ — scheduling is "
            f"virtual-time only; if this is a sanctioned real-time shim, "
            f"waive it with '// hetsgd-analyze: allow(wall-clock-core) "
            f"<why>'"))


# --- driver ------------------------------------------------------------------

RULES = (
    rule_ckpt_field_coverage,
    rule_lock_order,
    rule_msg_exhaustive,
    rule_atomic_discipline,
    rule_wall_clock_core,
)


def analyze(root: str, files: list[str], frontend: str,
            compile_commands: str | None,
            cindex) -> tuple[list[Finding], str]:
    if frontend == "clang":
        index = clang_scan(root, files, compile_commands, cindex)
        used = "clang"
    else:
        index = builtin_scan(root, files)
        used = "builtin"
    waivers = WaiverTable()
    findings: list[Finding] = []
    for rule in RULES:
        rule(root, index, waivers, findings)
    findings.sort(key=lambda f: (os.path.relpath(f.path, root), f.line,
                                 f.rule))
    return findings, used


def run_tree(root: str, compile_commands: str | None, frontend: str,
             cindex) -> int:
    files = iter_source_files(root, compile_commands)
    if not files:
        print(f"hetsgd-analyze: no sources under {root}/src", file=sys.stderr)
        return 2
    findings, used = analyze(root, files, frontend, compile_commands, cindex)
    for f in findings:
        print(f.format(root))
    if findings:
        print(f"hetsgd-analyze: {len(findings)} finding(s) "
              f"[frontend={used}]", file=sys.stderr)
        return 1
    print(f"hetsgd-analyze: clean ({len(files)} files, frontend={used})")
    return 0


def self_test(script_root: str, frontend: str, cindex) -> int:
    """Runs the full rule set over every fixture subtree; each must
    produce exactly its planted `// EXPECT: <rule>` findings (clean
    subtrees plant none)."""
    fixtures = os.path.join(script_root, "fixtures")
    if not os.path.isdir(fixtures):
        print(f"hetsgd-analyze: no fixtures at {fixtures}", file=sys.stderr)
        return 2
    failures: list[str] = []
    cases = sorted(d for d in os.listdir(fixtures)
                   if os.path.isdir(os.path.join(fixtures, d)))
    total_expected = 0
    for case in cases:
        case_root = os.path.join(fixtures, case)
        files = []
        for dirpath, dirnames, filenames in os.walk(case_root):
            dirnames[:] = sorted(dirnames)
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.realpath(
                        os.path.join(dirpath, name)))
        findings, _used = analyze(case_root, files, frontend, None, cindex)
        got = {(f.rule, os.path.relpath(f.path, case_root), f.line)
               for f in findings}
        expected = set()
        for path in files:
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = EXPECT_RE.search(line)
                    if m:
                        expected.add((m.group(1),
                                      os.path.relpath(path, case_root),
                                      lineno))
        total_expected += len(expected)
        for rule, rel, line in sorted(expected - got):
            failures.append(f"{case}: planted {rule} at {rel}:{line} "
                            f"not detected")
        for rule, rel, line in sorted(got - expected):
            failures.append(f"{case}: spurious {rule} finding at "
                            f"{rel}:{line}")
    if failures:
        for msg in failures:
            print(f"hetsgd-analyze self-test FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"hetsgd-analyze self-test OK ({len(cases)} fixture trees, "
          f"{total_expected} planted violations detected, clean trees clean)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json path (default: "
                             "<root>/build/compile_commands.json if present)")
    parser.add_argument("--frontend", choices=("auto", "clang", "builtin"),
                        default="auto",
                        help="auto = clang when libclang is importable, "
                             "else builtin")
    parser.add_argument("--require-clang", action="store_true",
                        help="fail (exit 1) instead of SKIP/fallback when "
                             "libclang is unavailable (CI)")
    parser.add_argument("--self-test", action="store_true",
                        help="analyze the seeded fixtures instead of the tree")
    args = parser.parse_args()

    here = os.path.dirname(os.path.realpath(__file__))
    root = os.path.realpath(args.root) if args.root else \
        os.path.realpath(os.path.join(here, "..", ".."))

    cindex = find_libclang()
    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if cindex is not None else "builtin"
    if frontend == "clang" and cindex is None:
        if args.require_clang:
            print("hetsgd-analyze: FAIL — libclang required but not "
                  "available (install python3-clang + libclang)",
                  file=sys.stderr)
            return 1
        print("hetsgd-analyze: SKIP clang frontend (libclang not "
              "available); falling back to the builtin frontend")
        frontend = "builtin"

    if args.self_test:
        return self_test(here, frontend, cindex)

    if not os.path.isdir(os.path.join(root, "src")):
        print(f"hetsgd-analyze: {root} has no src/ directory",
              file=sys.stderr)
        return 2
    cc = args.compile_commands
    if cc is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        cc = default_cc if os.path.exists(default_cc) else None
    return run_tree(root, cc, frontend, cindex)


if __name__ == "__main__":
    sys.exit(main())
