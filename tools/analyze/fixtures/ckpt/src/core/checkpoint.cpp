#include "checkpoint.hpp"

void sink(double v);

namespace {

void write_stats(const EmbeddedStats& s) {
  sink(static_cast<double>(s.updates));
  sink(static_cast<double>(s.batches));
}

void read_stats(EmbeddedStats& s) {
  s.updates = 0;  // batches and busy forgotten: the rule must notice
}

}  // namespace

void write_training_checkpoint(const TrainingCheckpoint& c) {
  sink(static_cast<double>(c.sequence));
  sink(c.lr_scale);  // written but never read back
  for (double v : c.curve) sink(v);
  write_stats(c.stats);
}

void read_training_checkpoint(TrainingCheckpoint& c) {
  c.sequence = 0;
  c.curve.clear();
  read_stats(c.stats);
}
