// Broken fixture for ckpt-field-coverage: the serializers below miss
// three fields in three different ways (write-only, absent from both,
// embedded-struct read gap). A waived scratch field and a static member
// must stay silent.
#pragma once
#include <cstdint>
#include <vector>

struct EmbeddedStats {
  std::uint64_t updates = 0;
  std::uint64_t batches = 0;  // EXPECT: ckpt-field-coverage
  double busy = 0.0;          // EXPECT: ckpt-field-coverage
};

struct TrainingCheckpoint {
  std::uint64_t sequence = 0;
  double lr_scale = 1.0;  // EXPECT: ckpt-field-coverage
  std::vector<double> curve;
  EmbeddedStats stats;
  // hetsgd-analyze: allow(ckpt-field-coverage) scratch value, rebuilt on load
  double scratch = 0.0;
  static int kVersion;
};

void write_training_checkpoint(const TrainingCheckpoint& c);
void read_training_checkpoint(TrainingCheckpoint& c);
