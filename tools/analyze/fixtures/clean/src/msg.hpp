#pragma once
#include <variant>

struct Tick {
  long at = 0;
};
struct Stop {
  int code = 0;
};

using Message = std::variant<Tick, Stop>;
