// Clean-tree fixture: every rule engages here and must report nothing —
// consistent lock order (including a REQUIRES-annotated helper), an
// exhaustive dispatch, an allowlisted relaxed counter next to an
// acquire/release pair, and no wall clocks anywhere in core.
#include <atomic>

#include "../msg.hpp"

struct AnnotatedMutex {
  void lock();
  void unlock();
};

struct MutexLock {
  explicit MutexLock(AnnotatedMutex& mu);
};

struct Engine {
  void step() {
    MutexLock lo(outer_);
    MutexLock li(inner_);
    locked_tick();
  }
  void locked_tick() HETSGD_REQUIRES(outer_) {
    MutexLock li(inner_);
  }
  int handle(const Message& m) {
    if (std::holds_alternative<Tick>(m)) return on_tick();
    if (std::holds_alternative<Stop>(m)) return 0;
    return -1;
  }
  int on_tick() {
    ticks_.fetch_add(1, std::memory_order_relaxed);
    published_.store(true, std::memory_order_release);
    return published_.load(std::memory_order_acquire) ? 1 : 0;
  }
  AnnotatedMutex outer_;
  AnnotatedMutex inner_;
  std::atomic<long> ticks_{0};
  std::atomic<bool> published_{false};
};
