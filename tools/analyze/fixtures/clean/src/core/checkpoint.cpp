#include "checkpoint.hpp"

void sink(double v);

namespace {

void write_rng(const EmbeddedRng& r) {
  sink(static_cast<double>(r.word));
}

void read_rng(EmbeddedRng& r) {
  r.word = 0;
}

}  // namespace

void write_training_checkpoint(const TrainingCheckpoint& c) {
  sink(static_cast<double>(c.sequence));
  sink(c.loss);
  write_rng(c.rng);
}

void read_training_checkpoint(TrainingCheckpoint& c) {
  c.sequence = 0;
  c.loss = 0.0;
  read_rng(c.rng);
}
