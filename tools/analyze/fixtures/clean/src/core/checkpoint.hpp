#pragma once
#include <cstdint>

struct EmbeddedRng {
  std::uint64_t word = 0;
};

struct TrainingCheckpoint {
  std::uint64_t sequence = 0;
  double loss = 0.0;
  EmbeddedRng rng;
};

void write_training_checkpoint(const TrainingCheckpoint& c);
void read_training_checkpoint(TrainingCheckpoint& c);
