#pragma once
#include <variant>

struct Ping {
  int seq = 0;
};
struct Pong {
  int seq = 0;
};
struct Quit {
  int code = 0;
};

using Message = std::variant<Ping, Pong, Quit>;
