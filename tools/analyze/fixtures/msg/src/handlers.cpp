// Broken fixture for msg-exhaustive: a dispatcher that forgot Quit, a
// stale ignores() annotation, an ignores()/handled overlap, and a
// non-exhaustive std::visit — next to correct and correctly-annotated
// dispatchers that must stay silent.
#include "message.hpp"

int bad_dispatch(const Message& m) {
  if (std::holds_alternative<Ping>(m)) {  // EXPECT: msg-exhaustive
    return 1;
  }
  if (std::holds_alternative<Pong>(m)) {
    return 2;
  }
  return 0;  // Quit silently dropped: exactly the bug this rule exists for
}

int good_dispatch(const Message& m) {
  if (std::holds_alternative<Ping>(m)) return 1;
  if (std::holds_alternative<Pong>(m)) return 2;
  if (std::holds_alternative<Quit>(m)) return 3;
  return 0;
}

int annotated_dispatch(const Message& m) {
  // hetsgd-analyze: dispatch ignores(Quit) — fixture: Quit handled upstream
  if (std::holds_alternative<Ping>(m)) return 1;
  if (std::holds_alternative<Pong>(m)) return 2;
  return 0;
}

int stale_dispatch(const Message& m) {
  // hetsgd-analyze: dispatch ignores(Gone)
  if (std::holds_alternative<Ping>(m)) return 1;  // EXPECT: msg-exhaustive
  if (std::holds_alternative<Pong>(m)) return 2;
  if (std::holds_alternative<Quit>(m)) return 3;
  return 0;
}

int overlap_dispatch(const Message& m) {
  // hetsgd-analyze: dispatch ignores(Quit, Pong)
  if (std::holds_alternative<Ping>(m)) return 1;  // EXPECT: msg-exhaustive
  if (std::holds_alternative<Pong>(m)) return 2;
  return 0;
}

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};

int visit_dispatch(const Message& m) {
  return std::visit(  // EXPECT: msg-exhaustive
      Overloaded{[](const Ping&) { return 1; },
                 [](const Pong&) { return 2; }},
      m);
}
