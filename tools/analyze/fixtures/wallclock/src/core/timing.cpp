// Broken fixture for wall-clock-core: direct and *aliased* clock reads,
// a sleep, and a time() call inside src/core/ — while plain duration
// construction and a waived shim stay silent.
#include <chrono>
#include <thread>

using wall = std::chrono::steady_clock;

double poll_loop() {
  auto t0 = wall::now();                                       // EXPECT: wall-clock-core
  auto t1 = std::chrono::steady_clock::now();                  // EXPECT: wall-clock-core
  std::this_thread::sleep_for(std::chrono::milliseconds(5));   // EXPECT: wall-clock-core
  long stamp = time(nullptr);                                  // EXPECT: wall-clock-core
  auto budget = std::chrono::milliseconds(20);  // a duration, not a clock read
  // hetsgd-analyze: allow(wall-clock-core) fixture: sanctioned realtime shim
  auto t2 = wall::now();
  (void)t0;
  (void)t1;
  (void)stamp;
  (void)budget;
  (void)t2;
  return 0.0;
}
