// Outside src/core/ wall clocks are legitimate (obs exporters, CLI
// timing): no finding here.
#include <chrono>

double outside_core() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
