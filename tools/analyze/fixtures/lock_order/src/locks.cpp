// Broken fixture for lock-order: two deliberate cycles (a lexical AB/BA
// inversion and a REQUIRES+call-graph inversion), one consistent pair
// that must stay silent, and one waived cycle.

struct AnnotatedMutex {
  void lock();
  void unlock();
};

struct MutexLock {
  explicit MutexLock(AnnotatedMutex& mu);
};

// Lexical inversion: ab() nests a under b, ba() nests b under a.
struct Alpha {
  void ab() {
    MutexLock la(mu_a);
    MutexLock lb(mu_b);  // EXPECT: lock-order
  }
  void ba() {
    MutexLock lb(mu_b);
    MutexLock la(mu_a);
  }
  AnnotatedMutex mu_a;
  AnnotatedMutex mu_b;
};

// Interprocedural inversion: locks_d() acquires d with c held (REQUIRES),
// other() calls into helper() — which acquires c — while holding d.
struct Beta {
  void locks_d() HETSGD_REQUIRES(mu_c) {
    MutexLock ld(mu_d);  // EXPECT: lock-order
  }
  void other() {
    MutexLock ld(mu_d);
    helper();
  }
  void helper() {
    MutexLock lc(mu_c);
  }
  AnnotatedMutex mu_c;
  AnnotatedMutex mu_d;
};

// Consistent order everywhere: no finding.
struct Gamma {
  void both() {
    MutexLock lx(mu_x);
    MutexLock ly(mu_y);
  }
  void partial() {
    MutexLock lx(mu_x);
  }
  AnnotatedMutex mu_x;
  AnnotatedMutex mu_y;
};

// Waived cycle: the allow() on one witness site silences the report.
struct Delta {
  void pq() {
    MutexLock lp(mu_p);
    // hetsgd-analyze: allow(lock-order) fixture: sanctioned teardown path
    MutexLock lq(mu_q);
  }
  void qp() {
    MutexLock lq(mu_q);
    MutexLock lp(mu_p);
  }
  AnnotatedMutex mu_p;
  AnnotatedMutex mu_q;
};
