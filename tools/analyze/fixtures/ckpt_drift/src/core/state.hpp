// Broken fixture: the checkpoint struct exists but its read serializer
// drifted away (renamed / deleted), so coverage cannot be checked at all —
// the rule must say so instead of passing vacuously.
#pragma once
#include <cstdint>

struct TrainingCheckpoint {  // EXPECT: ckpt-field-coverage
  std::uint64_t sequence = 0;
  double loss = 0.0;
};

void write_training_checkpoint(const TrainingCheckpoint& c);
