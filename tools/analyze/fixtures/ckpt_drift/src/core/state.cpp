#include "state.hpp"

void sink(double v);

void write_training_checkpoint(const TrainingCheckpoint& c) {
  sink(static_cast<double>(c.sequence));
  sink(c.loss);
}
