// Broken fixture for atomic-discipline: an unsanctioned relaxed store
// next to a waived probe and a correct acquire/release pair.
#include <atomic>

struct Flags {
  void set() {
    ready_.store(true, std::memory_order_relaxed);  // EXPECT: atomic-discipline
  }
  bool probe() const {
    // hetsgd-analyze: allow(atomic-discipline) fixture: sanctioned probe
    return probe_.load(std::memory_order_relaxed);
  }
  void publish() {
    done_.store(true, std::memory_order_release);
  }
  bool consume() const {
    return done_.load(std::memory_order_acquire);
  }
  std::atomic<bool> ready_{false};
  std::atomic<bool> probe_{false};
  std::atomic<bool> done_{false};
};
