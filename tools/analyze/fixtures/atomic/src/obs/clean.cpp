// Allowlisted relaxed site: ("src/obs/clean.cpp", "hits_") is in
// ALLOWED_RELAXED, so this statistical counter must not be reported.
#include <atomic>

struct HitCounter {
  void record() {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<long> hits_{0};
};
